// Package pushdown implements computation pushdown (the "BPF for storage"
// idea from PAPERS.md): small, registered user programs run directly
// where the data lives — against in-place BufHandle views from the LRU or
// driver — so filter/aggregate scans move results, not bytes, across the
// stack boundary and the serve wire.
//
// Two program flavors share one registry, both addressed by content hash:
//
//   - declarative predicates compiled from a tiny mini-language
//     ("filter where u32@0 == 7 and substr \"err\"", "sum u64@8 where ...")
//     that covers field/offset compares, substring match and
//     count/sum/min/max aggregation;
//   - Go closures (RegisterFunc) for everything the mini-language cannot
//     express. Go code has no canonical byte representation, so closures
//     hash their registered name instead of their body.
//
// Execution is budgeted (bytes scanned, evaluation steps) so a runaway
// program cannot wedge a worker; a Policy (policy.go) decides which
// tenants may run which programs and clamps the budgets per request.
package pushdown

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// RefPrefix starts every program ref ("pd:" + 16 hex chars of the
// program's SHA-256 content hash).
const RefPrefix = "pd:"

type cmpOp uint8

const (
	cmpEQ cmpOp = iota
	cmpNE
	cmpLT
	cmpLE
	cmpGT
	cmpGE
)

var cmpNames = map[string]cmpOp{
	"==": cmpEQ, "!=": cmpNE, "<": cmpLT, "<=": cmpLE, ">": cmpGT, ">=": cmpGE,
}

// field is a fixed-width little-endian unsigned integer at a byte offset
// inside a record.
type field struct {
	width int // 1, 2, 4 or 8
	off   int64
}

type predKind uint8

const (
	predField predKind = iota
	predSubstr
)

// pred is one compiled predicate; a program matches a record when all its
// predicates do.
type pred struct {
	kind predKind
	f    field
	cmp  cmpOp
	val  uint64
	lit  []byte // substr literal
}

// aggKind selects what a matching record contributes to the result.
type aggKind uint8

const (
	aggFilter aggKind = iota // emit the matching record
	aggCount
	aggSum
	aggMin
	aggMax
)

// Func is a registered Go-closure program: return true to match a record.
type Func func(rec []byte) bool

// Program is a compiled pushdown program.
type Program struct {
	// Ref is the content-hash address ("pd:<hex16>").
	Ref string
	// Name is the registration name (informational; Lookup accepts both).
	Name string
	// Src is the mini-language source, or "" for Go closures.
	Src string

	preds []pred
	agg   aggKind
	af    field // sum/min/max operand
	fn    Func
}

// Aggregates reports whether the program reduces to a scalar (count/sum/
// min/max) rather than emitting matching records.
func (p *Program) Aggregates() bool { return p.agg != aggFilter }

// needsContiguous reports whether evaluation requires the whole record in
// one slice (closures and substring search); pure field programs can read
// across chunk boundaries without assembling.
func (p *Program) needsContiguous() bool {
	if p.fn != nil {
		return true
	}
	for _, pr := range p.preds {
		if pr.kind == predSubstr {
			return true
		}
	}
	return false
}

// hashRef derives the content-hash ref for a canonical byte string.
func hashRef(canon string) string {
	sum := sha256.Sum256([]byte(canon))
	return RefPrefix + hex.EncodeToString(sum[:8])
}

// Compile parses mini-language source into a Program.
//
// Grammar:
//
//	program := verb [where-clause]
//	verb    := "filter" | "count" | ("sum"|"min"|"max") field
//	where   := "where" pred ("and" pred)*
//	pred    := "substr" quoted-string | field cmp number
//	field   := ("u8"|"u16"|"u32"|"u64") "@" offset
//	cmp     := == != < <= > >=
//
// Numbers are decimal or 0x-hex, compared unsigned; fields decode
// little-endian.
func Compile(src string) (*Program, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("pushdown: empty program")
	}
	p := &Program{Src: src, Ref: hashRef("src:" + src)}
	i := 0
	switch toks[i] {
	case "filter":
		p.agg = aggFilter
		i++
	case "count":
		p.agg = aggCount
		i++
	case "sum", "min", "max":
		switch toks[i] {
		case "sum":
			p.agg = aggSum
		case "min":
			p.agg = aggMin
		case "max":
			p.agg = aggMax
		}
		i++
		if i >= len(toks) {
			return nil, fmt.Errorf("pushdown: %s needs a field operand", toks[i-1])
		}
		f, err := parseField(toks[i])
		if err != nil {
			return nil, err
		}
		p.af = f
		i++
	default:
		return nil, fmt.Errorf("pushdown: unknown verb %q (want filter/count/sum/min/max)", toks[0])
	}
	if i < len(toks) {
		if toks[i] != "where" {
			return nil, fmt.Errorf("pushdown: expected 'where', got %q", toks[i])
		}
		i++
		for {
			pr, n, err := parsePred(toks[i:])
			if err != nil {
				return nil, err
			}
			p.preds = append(p.preds, pr)
			i += n
			if i >= len(toks) {
				break
			}
			if toks[i] != "and" {
				return nil, fmt.Errorf("pushdown: expected 'and', got %q", toks[i])
			}
			i++
			if i >= len(toks) {
				return nil, fmt.Errorf("pushdown: dangling 'and'")
			}
		}
	}
	if p.agg == aggFilter && len(p.preds) == 0 {
		return nil, fmt.Errorf("pushdown: filter needs a where clause")
	}
	return p, nil
}

func tokenize(src string) ([]string, error) {
	var toks []string
	for i := 0; i < len(src); {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("pushdown: unterminated string literal")
			}
			toks = append(toks, src[i:j+1])
			i = j + 1
		default:
			j := i
			for j < len(src) && src[j] != ' ' && src[j] != '\t' && src[j] != '\n' && src[j] != '\r' {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks, nil
}

func parseField(tok string) (field, error) {
	at := strings.IndexByte(tok, '@')
	if at < 0 {
		return field{}, fmt.Errorf("pushdown: bad field %q (want u8|u16|u32|u64@offset)", tok)
	}
	var w int
	switch tok[:at] {
	case "u8":
		w = 1
	case "u16":
		w = 2
	case "u32":
		w = 4
	case "u64":
		w = 8
	default:
		return field{}, fmt.Errorf("pushdown: bad field width in %q", tok)
	}
	off, err := strconv.ParseInt(tok[at+1:], 10, 64)
	if err != nil || off < 0 {
		return field{}, fmt.Errorf("pushdown: bad field offset in %q", tok)
	}
	return field{width: w, off: off}, nil
}

func parsePred(toks []string) (pred, int, error) {
	if len(toks) == 0 {
		return pred{}, 0, fmt.Errorf("pushdown: missing predicate")
	}
	if toks[0] == "substr" {
		if len(toks) < 2 || len(toks[1]) < 2 || toks[1][0] != '"' {
			return pred{}, 0, fmt.Errorf("pushdown: substr needs a quoted literal")
		}
		lit := toks[1][1 : len(toks[1])-1]
		if lit == "" {
			return pred{}, 0, fmt.Errorf("pushdown: empty substr literal")
		}
		return pred{kind: predSubstr, lit: []byte(lit)}, 2, nil
	}
	if len(toks) < 3 {
		return pred{}, 0, fmt.Errorf("pushdown: truncated predicate %q", strings.Join(toks, " "))
	}
	f, err := parseField(toks[0])
	if err != nil {
		return pred{}, 0, err
	}
	cmp, ok := cmpNames[toks[1]]
	if !ok {
		return pred{}, 0, fmt.Errorf("pushdown: bad comparator %q", toks[1])
	}
	val, err := strconv.ParseUint(strings.TrimPrefix(toks[2], "0x"), numBase(toks[2]), 64)
	if err != nil {
		return pred{}, 0, fmt.Errorf("pushdown: bad number %q", toks[2])
	}
	return pred{kind: predField, f: f, cmp: cmp, val: val}, 3, nil
}

func numBase(tok string) int {
	if strings.HasPrefix(tok, "0x") {
		return 16
	}
	return 10
}

// Registry maps refs and names to compiled programs. The zero registry is
// not usable; use NewRegistry. Default is the process-wide registry the
// LabMods execute from.
type Registry struct {
	mu     sync.RWMutex
	byRef  map[string]*Program
	byName map[string]*Program
}

// Default is the process-wide program registry.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byRef: make(map[string]*Program), byName: make(map[string]*Program)}
}

// Register compiles src and stores it under name and its content-hash
// ref. Re-registering the same name with different source replaces the
// name binding (the old ref stays resolvable — content addressing).
func (r *Registry) Register(name, src string) (*Program, error) {
	p, err := Compile(src)
	if err != nil {
		return nil, err
	}
	p.Name = name
	r.mu.Lock()
	r.byRef[p.Ref] = p
	if name != "" {
		r.byName[name] = p
	}
	r.mu.Unlock()
	return p, nil
}

// RegisterFunc stores a Go-closure program. Closures hash their name
// ("func:<name>"), not their body — Go code has no canonical bytes.
func (r *Registry) RegisterFunc(name string, fn Func) *Program {
	p := &Program{Ref: hashRef("func:" + name), Name: name, fn: fn}
	r.mu.Lock()
	r.byRef[p.Ref] = p
	if name != "" {
		r.byName[name] = p
	}
	r.mu.Unlock()
	return p
}

// Lookup resolves a ref or a registered name.
func (r *Registry) Lookup(refOrName string) (*Program, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if p, ok := r.byRef[refOrName]; ok {
		return p, true
	}
	p, ok := r.byName[refOrName]
	return p, ok
}

// Programs returns all registered programs (unordered, deduplicated).
func (r *Registry) Programs() []*Program {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Program, 0, len(r.byRef))
	for _, p := range r.byRef {
		out = append(out, p)
	}
	return out
}
