package pushdown

import (
	"fmt"
	"strconv"
	"strings"

	"labstor/internal/core"
	"labstor/internal/telemetry"
	"labstor/internal/vtime"
)

// Type is the registered module type name.
const Type = "labstor.pushdown"

func init() {
	core.RegisterType(Type, func() core.Module { return &Mod{} })
}

// Stats bundles the pushdown.* runtime counters. Both the gate vertex and
// the executing mods (labkvs/labfs) publish into the same registry-backed
// counters, so one Counters call per Configure is cheap and idempotent.
type Stats struct {
	Execs       *telemetry.Counter // scans executed
	Records     *telemetry.Counter // records evaluated
	Bytes       *telemetry.Counter // record bytes evaluated in place
	Matches     *telemetry.Counter // records matched
	EmitBytes   *telemetry.Counter // result bytes emitted (filter mode)
	BudgetTrips *telemetry.Counter // scans aborted by byte/step budgets
	Denied      *telemetry.Counter // programs rejected by policy
}

// Counters returns the pushdown.* counters from m (nil-safe: returns
// throwaway counters so callers can Inc unconditionally).
func Counters(m *telemetry.Registry) Stats {
	if m == nil {
		return Stats{
			Execs: &telemetry.Counter{}, Records: &telemetry.Counter{},
			Bytes: &telemetry.Counter{}, Matches: &telemetry.Counter{},
			EmitBytes: &telemetry.Counter{}, BudgetTrips: &telemetry.Counter{},
			Denied: &telemetry.Counter{},
		}
	}
	return Stats{
		Execs:       m.Counter("pushdown.execs"),
		Records:     m.Counter("pushdown.records"),
		Bytes:       m.Counter("pushdown.bytes"),
		Matches:     m.Counter("pushdown.matches"),
		EmitBytes:   m.Counter("pushdown.emit_bytes"),
		BudgetTrips: m.Counter("pushdown.budget_trips"),
		Denied:      m.Counter("pushdown.denied"),
	}
}

// Mod is the pushdown gate vertex: a policy/annotation LabMod placed
// above the executing store (labkvs/labfs). It admits program-carrying
// scans against a stack-wide allow-list, clamps their execution budgets,
// rewrites the program reference to its canonical content-hash ref, and
// forwards. Execution itself happens where the data lives — in the store
// mods below, against in-place buffer views. Requests that are not
// program scans pass through untouched.
//
// Attrs: allow (comma-separated patterns, default "*" — stacks without a
// serve front end trust their local callers), max_scan_mb, max_steps,
// registry programs via "prog.<name>" attributes.
type Mod struct {
	core.Base

	pol   *Policy
	stats Stats
}

// Info describes the module.
func (m *Mod) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: Type, Version: "1.0", Consumes: core.APIAny, Produces: core.APIAny}
}

// Configure builds the gate policy from vertex attributes.
func (m *Mod) Configure(cfg core.Config, env *core.Env) error {
	if err := m.Base.Configure(cfg, env); err != nil {
		return err
	}
	allow := []string{"*"}
	if raw := cfg.Attr("allow", ""); raw != "" {
		allow = allow[:0]
		for _, pat := range strings.Split(raw, ",") {
			if pat = strings.TrimSpace(pat); pat != "" {
				allow = append(allow, pat)
			}
		}
	}
	var caps Caps
	if mb, err := strconv.Atoi(cfg.Attr("max_scan_mb", "0")); err == nil && mb > 0 {
		caps.MaxBytes = int64(mb) << 20
	}
	if st, err := strconv.ParseInt(cfg.Attr("max_steps", "0"), 10, 64); err == nil && st > 0 {
		caps.MaxSteps = st
	}
	m.pol = NewPolicy(Default, allow, caps)
	for name, src := range cfg.Attrs {
		if !strings.HasPrefix(name, "prog.") {
			continue
		}
		if _, err := Default.Register(strings.TrimPrefix(name, "prog."), src); err != nil {
			return fmt.Errorf("pushdown: vertex %q attr %q: %w", cfg.UUID, name, err)
		}
	}
	m.stats = Counters(env.Metrics)
	return nil
}

// Process gates program scans and forwards everything else untouched.
func (m *Mod) Process(e *core.Exec, req *core.Request) error {
	if req.Op != core.OpScan || req.Prog == "" {
		return e.Next(req)
	}
	req.Charge("pushdown_gate", e.Model.ModLookup)
	prog, err := m.pol.Admit("", req.Prog)
	if err != nil {
		m.stats.Denied.Inc()
		req.Err = err
		return nil
	}
	req.Prog = prog.Ref
	m.pol.Clamp("", req)
	return e.Next(req)
}

// EstProcessingTime estimates the gate's per-request cost.
func (m *Mod) EstProcessingTime(op core.Op, size int) vtime.Duration {
	return m.Env.Model.ModLookup
}
