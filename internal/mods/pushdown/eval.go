package pushdown

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"labstor/internal/core"
	"labstor/internal/telemetry"
)

// Default per-request execution budgets, applied when the policy layer did
// not clamp tighter ones onto the request.
const (
	DefaultMaxBytes = 64 << 20 // bytes scanned
	DefaultMaxSteps = 1 << 20  // records × predicates evaluated
)

// ErrBudget aborts a scan whose program exhausted its byte or step budget.
var ErrBudget = errors.New("pushdown: execution budget exceeded")

// Emission copy sites (telemetry copies/op audit): pushdown's whole point
// is that these are the ONLY data-path copies a scan makes — matched
// bytes out (emit), plus small assembly copies when a record spans chunks
// (assemble) or a grep line spans blocks (carry, charged by labfs).
var (
	copyEmit     = telemetry.CopySite("pushdown.emit")
	copyAssemble = telemetry.CopySite("pushdown.assemble")
	// CopyCarry audits partial-line bytes carried across block boundaries
	// by streaming line scanners (labfs grep-offload).
	CopyCarry = telemetry.CopySite("pushdown.carry")
)

// EmitStyle selects how filter-mode matches are framed into the result.
type EmitStyle uint8

const (
	// EmitKV frames each match as uvarint(len(key)) key uvarint(len(val)) val.
	EmitKV EmitStyle = iota
	// EmitRaw appends each match followed by '\n' (grep-style lines).
	EmitRaw
)

// Eval executes one program over a stream of records, tracking budgets and
// accumulating either an aggregate scalar or emitted matches. Not
// concurrency-safe; one Eval per request.
type Eval struct {
	prog  *Program
	style EmitStyle

	maxBytes int64
	maxSteps int64
	bytes    int64
	steps    int64
	records  int64
	matched  int64

	agg    uint64
	aggSet bool

	out     []byte
	scratch []byte
}

// NewEval returns an evaluator for prog. maxBytes/maxSteps of 0 (or
// negative) apply the package defaults.
func NewEval(prog *Program, style EmitStyle, maxBytes, maxSteps int64) *Eval {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	return &Eval{prog: prog, style: style, maxBytes: maxBytes, maxSteps: maxSteps}
}

// Record evaluates one record, supplied as one or more in-place chunk
// views (e.g. per-block BufHandle views — the evaluator never copies them
// unless the program needs a contiguous record). Returns whether the
// record matched; a budget trip returns ErrBudget and the scan must stop.
func (ev *Eval) Record(key string, chunks ...[]byte) (bool, error) {
	size := 0
	for _, c := range chunks {
		size += len(c)
	}
	ev.bytes += int64(size)
	ev.steps += int64(1 + len(ev.prog.preds))
	if ev.bytes > ev.maxBytes || ev.steps > ev.maxSteps {
		return false, fmt.Errorf("%w: %d bytes (cap %d), %d steps (cap %d)",
			ErrBudget, ev.bytes, ev.maxBytes, ev.steps, ev.maxSteps)
	}
	ev.records++

	var rec []byte
	if len(chunks) == 1 {
		rec = chunks[0]
	} else if ev.prog.needsContiguous() {
		ev.scratch = ev.scratch[:0]
		for _, c := range chunks {
			ev.scratch = append(ev.scratch, c...)
		}
		copyAssemble.Add(size)
		rec = ev.scratch
	}

	if !ev.match(rec, chunks) {
		return false, nil
	}
	ev.matched++

	switch ev.prog.agg {
	case aggCount:
		ev.agg++
	case aggSum, aggMin, aggMax:
		v, ok := readFieldChunks(rec, chunks, ev.prog.af)
		if !ok {
			return true, nil // record too short for the operand: contributes nothing
		}
		switch ev.prog.agg {
		case aggSum:
			ev.agg += v
		case aggMin:
			if !ev.aggSet || v < ev.agg {
				ev.agg = v
			}
		case aggMax:
			if !ev.aggSet || v > ev.agg {
				ev.agg = v
			}
		}
		ev.aggSet = true
	case aggFilter:
		ev.emit(key, rec, chunks, size)
	}
	return true, nil
}

func (ev *Eval) match(rec []byte, chunks [][]byte) bool {
	p := ev.prog
	if p.fn != nil {
		return p.fn(rec)
	}
	for _, pr := range p.preds {
		switch pr.kind {
		case predSubstr:
			if !bytes.Contains(rec, pr.lit) {
				return false
			}
		case predField:
			v, ok := readFieldChunks(rec, chunks, pr.f)
			if !ok {
				return false // record too short: no match
			}
			if !compare(v, pr.cmp, pr.val) {
				return false
			}
		}
	}
	return true
}

func compare(v uint64, op cmpOp, ref uint64) bool {
	switch op {
	case cmpEQ:
		return v == ref
	case cmpNE:
		return v != ref
	case cmpLT:
		return v < ref
	case cmpLE:
		return v <= ref
	case cmpGT:
		return v > ref
	case cmpGE:
		return v >= ref
	}
	return false
}

// readFieldChunks decodes a little-endian field, preferring the contiguous
// record when available and gathering across chunk boundaries otherwise.
func readFieldChunks(rec []byte, chunks [][]byte, f field) (uint64, bool) {
	if rec != nil {
		if f.off+int64(f.width) > int64(len(rec)) {
			return 0, false
		}
		return readLE(rec[f.off : f.off+int64(f.width)]), true
	}
	var buf [8]byte
	need := f.width
	got := 0
	skip := f.off
	for _, c := range chunks {
		if skip >= int64(len(c)) {
			skip -= int64(len(c))
			continue
		}
		n := copy(buf[got:need], c[skip:])
		got += n
		skip = 0
		if got == need {
			return readLE(buf[:need]), true
		}
	}
	return 0, false
}

func readLE(b []byte) uint64 {
	switch len(b) {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	case 8:
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (ev *Eval) emit(key string, rec []byte, chunks [][]byte, size int) {
	switch ev.style {
	case EmitKV:
		ev.out = binary.AppendUvarint(ev.out, uint64(len(key)))
		ev.out = append(ev.out, key...)
		ev.out = binary.AppendUvarint(ev.out, uint64(size))
	}
	if rec != nil {
		ev.out = append(ev.out, rec...)
	} else {
		for _, c := range chunks {
			ev.out = append(ev.out, c...)
		}
	}
	if ev.style == EmitRaw {
		ev.out = append(ev.out, '\n')
	}
	copyEmit.Add(size + len(key))
}

// Finish stores the scan outcome on the request: the aggregate scalar in
// Result, or the emitted matches in Value with Result = len(Value).
func (ev *Eval) Finish(req *core.Request) {
	if ev.prog.Aggregates() {
		req.Result = int64(ev.agg)
		return
	}
	req.Value = ev.out
	req.Result = int64(len(ev.out))
}

// BytesScanned returns how many record bytes the program evaluated.
func (ev *Eval) BytesScanned() int64 { return ev.bytes }

// Records returns how many records were evaluated.
func (ev *Eval) Records() int64 { return ev.records }

// Matched returns how many records matched.
func (ev *Eval) Matched() int64 { return ev.matched }

// EmitBytes returns the size of the emitted result (filter mode).
func (ev *Eval) EmitBytes() int64 { return int64(len(ev.out)) }

// DecodeKV walks an EmitKV result, calling fn per match. Clients use it
// to unpack scan results; the experiment uses it to verify correctness.
func DecodeKV(buf []byte, fn func(key string, val []byte) error) error {
	for len(buf) > 0 {
		kl, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf)-n) < kl {
			return fmt.Errorf("pushdown: torn KV result (key)")
		}
		buf = buf[n:]
		key := string(buf[:kl])
		buf = buf[kl:]
		vl, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf)-n) < vl {
			return fmt.Errorf("pushdown: torn KV result (val)")
		}
		buf = buf[n:]
		if err := fn(key, buf[:vl]); err != nil {
			return err
		}
		buf = buf[vl:]
	}
	return nil
}
