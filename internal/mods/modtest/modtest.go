// Package modtest provides the shared harness LabMod unit tests use to
// exercise a module in isolation or in a small chain — the "debugging mode
// that allows LabMods to be run in isolation" of the paper, as a test
// library.
package modtest

import (
	"testing"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/vtime"
)

// Harness hosts modules over one simulated device.
type Harness struct {
	Env      *core.Env
	Registry *core.Registry
	Exec     *core.Exec
	Dev      *device.Device
	NS       *core.Namespace
}

// New builds a harness with one device named "dev0".
func New(t *testing.T, class device.Class, capacity int64) *Harness {
	t.Helper()
	h := &Harness{
		Env:      core.NewEnv(nil),
		Registry: core.NewRegistry(),
		NS:       core.NewNamespace(),
	}
	h.Dev = device.New("dev0", class, capacity)
	h.Env.AddDevice(h.Dev)
	h.Exec = core.NewExec(h.Registry, h.NS, h.Env.Model, 0)
	return h
}

// Chain instantiates the given (uuid, type, attrs) triples as a linear
// stack mounted at mount and returns it.
type ChainVertex struct {
	UUID  string
	Type  string
	Attrs map[string]string
}

// Mount builds, validates and mounts a chain stack.
func (h *Harness) Mount(t *testing.T, mount string, chain ...ChainVertex) *core.Stack {
	t.Helper()
	vs := make([]core.Vertex, len(chain))
	for i, c := range chain {
		attrs := c.Attrs
		if attrs == nil {
			attrs = map[string]string{}
		}
		vs[i] = core.Vertex{UUID: c.UUID, Type: c.Type, Attrs: attrs}
		if i+1 < len(chain) {
			vs[i].Outputs = []string{chain[i+1].UUID}
		}
		if _, err := h.Registry.Instantiate(c.UUID, c.Type, core.Config{Attrs: attrs}, h.Env); err != nil {
			t.Fatalf("instantiate %s (%s): %v", c.UUID, c.Type, err)
		}
	}
	s := core.NewStack(mount, core.Rules{}, vs)
	if err := s.Validate(h.Registry); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if err := h.NS.Mount(s); err != nil {
		t.Fatalf("mount: %v", err)
	}
	return s
}

// Run submits a request through the stack and fails the test on transport
// errors (the request's own Err is returned for assertion).
func (h *Harness) Run(t *testing.T, s *core.Stack, req *core.Request) error {
	t.Helper()
	if err := h.Exec.Submit(s, req); err != nil && req.Err == nil {
		t.Fatalf("submit: %v", err)
	}
	return req.Err
}

// WriteReq builds a write request.
func WriteReq(path string, off int64, data []byte) *core.Request {
	r := core.NewRequest(core.OpWrite)
	r.Path = path
	r.Flags = core.FlagCreate
	r.Offset = off
	r.Size = len(data)
	r.Data = data
	return r
}

// ReadReq builds a read request with a fresh buffer.
func ReadReq(path string, off int64, n int) *core.Request {
	r := core.NewRequest(core.OpRead)
	r.Path = path
	r.Offset = off
	r.Size = n
	r.Data = make([]byte, n)
	return r
}

// BlockWriteReq builds a block write request.
func BlockWriteReq(off int64, data []byte) *core.Request {
	r := core.NewRequest(core.OpBlockWrite)
	r.Offset = off
	r.Size = len(data)
	r.Data = data
	return r
}

// BlockReadReq builds a block read request.
func BlockReadReq(off int64, n int) *core.Request {
	r := core.NewRequest(core.OpBlockRead)
	r.Offset = off
	r.Size = n
	r.Data = make([]byte, n)
	return r
}

// CPUOf returns a request's accumulated CPU time (assertion helper).
func CPUOf(r *core.Request) vtime.Duration { return r.CPUTime }
