package consistency_test

import (
	"testing"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/mods/consistency"
	"labstor/internal/mods/driver"
	"labstor/internal/mods/modtest"
)

func mountGuard(t *testing.T, h *modtest.Harness, level, interval string) (*core.Stack, *consistency.Guard) {
	attrs := map[string]string{"level": level}
	if interval != "" {
		attrs["interval"] = interval
	}
	s := h.Mount(t, "blk::/"+level,
		modtest.ChainVertex{UUID: "guard-" + level, Type: consistency.Type, Attrs: attrs},
		modtest.ChainVertex{UUID: "drv-" + level, Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"}},
	)
	m, _ := h.Registry.Get("guard-" + level)
	return s, m.(*consistency.Guard)
}

func TestStrictFlushesEveryWrite(t *testing.T) {
	h := modtest.New(t, device.NVMe, 16<<20)
	s, g := mountGuard(t, h, "strict", "")
	buf := make([]byte, 4096)
	for i := 0; i < 5; i++ {
		if err := h.Run(t, s, modtest.BlockWriteReq(int64(i)*4096, buf)); err != nil {
			t.Fatal(err)
		}
	}
	if g.Flushes() != 5 {
		t.Fatalf("strict flushes = %d", g.Flushes())
	}
}

func TestOrderedFlushesEveryN(t *testing.T) {
	h := modtest.New(t, device.NVMe, 16<<20)
	s, g := mountGuard(t, h, "ordered", "4")
	buf := make([]byte, 4096)
	for i := 0; i < 10; i++ {
		h.Run(t, s, modtest.BlockWriteReq(int64(i)*4096, buf))
	}
	if g.Flushes() != 2 { // at writes 4 and 8
		t.Fatalf("ordered flushes = %d", g.Flushes())
	}
}

func TestRelaxedNeverFlushes(t *testing.T) {
	h := modtest.New(t, device.NVMe, 16<<20)
	s, g := mountGuard(t, h, "relaxed", "")
	buf := make([]byte, 4096)
	for i := 0; i < 10; i++ {
		h.Run(t, s, modtest.BlockWriteReq(int64(i)*4096, buf))
	}
	if g.Flushes() != 0 {
		t.Fatalf("relaxed flushes = %d", g.Flushes())
	}
}

func TestReadsNeverFlush(t *testing.T) {
	h := modtest.New(t, device.NVMe, 16<<20)
	s, g := mountGuard(t, h, "strict", "")
	h.Run(t, s, modtest.BlockReadReq(0, 4096))
	if g.Flushes() != 0 {
		t.Fatal("read triggered a flush")
	}
}

func TestConfigValidation(t *testing.T) {
	h := modtest.New(t, device.NVMe, 16<<20)
	g := &consistency.Guard{}
	if err := g.Configure(core.Config{Attrs: map[string]string{"level": "chaotic"}}, h.Env); err == nil {
		t.Fatal("bad level accepted")
	}
	if err := g.Configure(core.Config{Attrs: map[string]string{"level": "ordered", "interval": "0"}}, h.Env); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestPendingCounterSurvivesUpgrade(t *testing.T) {
	h := modtest.New(t, device.NVMe, 16<<20)
	s, _ := mountGuard(t, h, "ordered", "4")
	buf := make([]byte, 4096)
	for i := 0; i < 3; i++ { // 3 pending, next flush after 1 more
		h.Run(t, s, modtest.BlockWriteReq(int64(i)*4096, buf))
	}
	next := &consistency.Guard{}
	next.Configure(core.Config{UUID: "guard-ordered", Attrs: map[string]string{"level": "ordered", "interval": "4"}}, h.Env)
	if err := h.Registry.Swap("guard-ordered", next); err != nil {
		t.Fatal(err)
	}
	h.Run(t, s, modtest.BlockWriteReq(4*4096, buf))
	if next.Flushes() != 1 {
		t.Fatalf("flush cadence lost across upgrade: %d", next.Flushes())
	}
}
