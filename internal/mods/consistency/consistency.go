// Package consistency implements the tunable-consistency LabMod, one of the
// paper's "new and exotic" composable policies: the module decides how
// aggressively writes are made durable downstream.
//
// Levels:
//   - "strict":  every write is followed by a flush (synchronous durability);
//   - "ordered": a flush is issued every N writes (attr "interval", default
//     16), preserving prefix durability;
//   - "relaxed": no flushes are injected; durability is the caller's problem.
package consistency

import (
	"fmt"
	"strconv"
	"sync"

	"labstor/internal/core"
	"labstor/internal/vtime"
)

// Type is the registered module type name.
const Type = "labstor.consistency"

func init() {
	core.RegisterType(Type, func() core.Module { return &Guard{} })
}

// Guard is the consistency module instance.
type Guard struct {
	core.Base
	level    string
	interval int

	mu      sync.Mutex
	pending int
	flushes int64
}

// Info describes the module.
func (g *Guard) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: Type, Version: "1.0", Consumes: core.APIBlock, Produces: core.APIBlock}
}

// Configure reads the level and flush interval.
func (g *Guard) Configure(cfg core.Config, env *core.Env) error {
	if err := g.Base.Configure(cfg, env); err != nil {
		return err
	}
	g.level = cfg.Attr("level", "ordered")
	switch g.level {
	case "strict", "ordered", "relaxed":
	default:
		return fmt.Errorf("consistency: unknown level %q", g.level)
	}
	iv, err := strconv.Atoi(cfg.Attr("interval", "16"))
	if err != nil || iv < 1 {
		return fmt.Errorf("consistency: bad interval %q", cfg.Attr("interval", "16"))
	}
	g.interval = iv
	return nil
}

// Process forwards the request and injects flushes per the policy.
func (g *Guard) Process(e *core.Exec, req *core.Request) error {
	if err := e.Next(req); err != nil {
		return err
	}
	if !req.Op.IsWrite() {
		return nil
	}
	needFlush := false
	switch g.level {
	case "strict":
		needFlush = true
	case "ordered":
		g.mu.Lock()
		g.pending++
		if g.pending >= g.interval {
			g.pending = 0
			needFlush = true
		}
		g.mu.Unlock()
	}
	if needFlush {
		g.mu.Lock()
		g.flushes++
		g.mu.Unlock()
		fl := req.Child(core.OpBlockFlush)
		return e.SpawnNext(req, fl)
	}
	return nil
}

// Flushes returns the number of injected flushes.
func (g *Guard) Flushes() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.flushes
}

// StateUpdate carries the pending-write counter across upgrades so ordered
// mode keeps its cadence.
func (g *Guard) StateUpdate(prev core.Module) error {
	if old, ok := prev.(*Guard); ok {
		old.mu.Lock()
		defer old.mu.Unlock()
		g.mu.Lock()
		defer g.mu.Unlock()
		g.pending, g.flushes = old.pending, old.flushes
	}
	return nil
}

// EstProcessingTime is negligible — the policy itself is cheap.
func (g *Guard) EstProcessingTime(op core.Op, size int) vtime.Duration {
	return 100 * vtime.Nanosecond
}
