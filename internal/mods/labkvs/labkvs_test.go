package labkvs_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/mods/driver"
	_ "labstor/internal/mods/generic"
	"labstor/internal/mods/labkvs"
	"labstor/internal/mods/modtest"
)

func mountKVS(t *testing.T, h *modtest.Harness) *core.Stack {
	return h.Mount(t, "kv::/k",
		modtest.ChainVertex{UUID: "kvs", Type: labkvs.Type, Attrs: map[string]string{"device": "dev0", "log_mb": "2"}},
		modtest.ChainVertex{UUID: "drv", Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"}},
	)
}

func kvsInstance(t *testing.T, h *modtest.Harness) *labkvs.LabKVS {
	m, _ := h.Registry.Get("kvs")
	return m.(*labkvs.LabKVS)
}

func put(t *testing.T, h *modtest.Harness, s *core.Stack, key string, val []byte) error {
	r := core.NewRequest(core.OpPut)
	r.Key = key
	r.Size = len(val)
	r.Data = val
	return h.Run(t, s, r)
}

func get(t *testing.T, h *modtest.Harness, s *core.Stack, key string) ([]byte, error) {
	r := core.NewRequest(core.OpGet)
	r.Key = key
	if err := h.Run(t, s, r); err != nil {
		return nil, err
	}
	return r.Value, nil
}

func TestPutGetDelHas(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountKVS(t, h)
	val := bytes.Repeat([]byte("v"), 10000) // multi-block value
	if err := put(t, h, s, "k1", val); err != nil {
		t.Fatal(err)
	}
	got, err := get(t, h, s, "k1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val) {
		t.Fatal("value mismatch")
	}
	has := core.NewRequest(core.OpHas)
	has.Key = "k1"
	h.Run(t, s, has)
	if has.Result != 1 {
		t.Fatal("has")
	}
	del := core.NewRequest(core.OpDel)
	del.Key = "k1"
	if err := h.Run(t, s, del); err != nil {
		t.Fatal(err)
	}
	if _, err := get(t, h, s, "k1"); err == nil {
		t.Fatal("get after delete succeeded")
	}
	del2 := core.NewRequest(core.OpDel)
	del2.Key = "k1"
	if err := h.Run(t, s, del2); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestOverwriteReclaimsBlocks(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountKVS(t, h)
	kv := kvsInstance(t, h)
	put(t, h, s, "k", make([]byte, 40960))
	put(t, h, s, "k", []byte("tiny"))
	if kv.Keys() != 1 {
		t.Fatal("keys")
	}
	got, _ := get(t, h, s, "k")
	if string(got) != "tiny" {
		t.Fatalf("overwrite value %q", got)
	}
	// After freeing the old 10 blocks, we can still fill most of the store.
	puts, gets, dels := kv.Stats()
	if puts != 2 || gets != 1 || dels != 0 {
		t.Fatalf("stats %d/%d/%d", puts, gets, dels)
	}
}

func TestScanWithPrefix(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountKVS(t, h)
	for _, k := range []string{"a/1", "a/2", "b/1"} {
		put(t, h, s, k, []byte("x"))
	}
	sc := core.NewRequest(core.OpReaddir)
	sc.Path = "a/"
	h.Run(t, s, sc)
	if len(sc.Names) != 2 || sc.Names[0] != "a/1" {
		t.Fatalf("scan %v", sc.Names)
	}
	all := core.NewRequest(core.OpReaddir)
	h.Run(t, s, all)
	if len(all.Names) != 3 {
		t.Fatalf("scan all %v", all.Names)
	}
}

func TestEmptyKeyRejectedViaGeneric(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := h.Mount(t, "kv::/g",
		modtest.ChainVertex{UUID: "gen", Type: "labstor.generickvs"},
		modtest.ChainVertex{UUID: "kvs2", Type: labkvs.Type, Attrs: map[string]string{"device": "dev0", "log_mb": "2"}},
		modtest.ChainVertex{UUID: "drv2", Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"}},
	)
	r := core.NewRequest(core.OpPut)
	r.Data = []byte("x")
	r.Size = 1
	if err := h.Run(t, s, r); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestReplayRebuildsIndex(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountKVS(t, h)
	vals := map[string][]byte{}
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("key-%02d", i)
		v := bytes.Repeat([]byte{byte(i + 1)}, 1000+i*97)
		put(t, h, s, k, v)
		vals[k] = v
	}
	// Delete some.
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("key-%02d", i)
		del := core.NewRequest(core.OpDel)
		del.Key = k
		h.Run(t, s, del)
		delete(vals, k)
	}
	// Flush the KVS log.
	fl := core.NewRequest(core.OpFsync)
	if err := h.Run(t, s, fl); err != nil {
		t.Fatal(err)
	}

	// Cold restart: fresh instance with replay.
	fresh := &labkvs.LabKVS{}
	if err := fresh.Configure(core.Config{UUID: "kvs", Attrs: map[string]string{
		"device": "dev0", "log_mb": "2", "replay": "true",
	}}, h.Env); err != nil {
		t.Fatal(err)
	}
	h.Registry.Register("kvs", fresh)

	for k, want := range vals {
		got, err := get(t, h, s, k)
		if err != nil {
			t.Fatalf("get %s after replay: %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("replayed value mismatch for %s", k)
		}
	}
	if _, err := get(t, h, s, "key-00"); err == nil {
		t.Fatal("deleted key resurrected")
	}
	if fresh.Keys() != len(vals) {
		t.Fatalf("replayed %d keys, want %d", fresh.Keys(), len(vals))
	}
}

func TestStateUpdatePreservesIndex(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountKVS(t, h)
	put(t, h, s, "persist", []byte("me"))
	next := &labkvs.LabKVS{}
	next.Configure(core.Config{UUID: "kvs", Attrs: map[string]string{"device": "dev0", "log_mb": "2"}}, h.Env)
	if err := h.Registry.Swap("kvs", next); err != nil {
		t.Fatal(err)
	}
	got, err := get(t, h, s, "persist")
	if err != nil || string(got) != "me" {
		t.Fatalf("after upgrade: %q %v", got, err)
	}
}

func TestQuickPutGetModel(t *testing.T) {
	h := modtest.New(t, device.NVMe, 128<<20)
	s := mountKVS(t, h)
	model := map[string][]byte{}
	rng := rand.New(rand.NewSource(5))
	f := func(keyByte uint8, val []byte) bool {
		key := fmt.Sprintf("k%d", keyByte%16)
		if len(val) == 0 || rng.Intn(4) == 0 {
			// Delete path.
			del := core.NewRequest(core.OpDel)
			del.Key = key
			err := h.Run(t, s, del)
			_, existed := model[key]
			delete(model, key)
			return (err == nil) == existed
		}
		if put(t, h, s, key, val) != nil {
			return false
		}
		cp := make([]byte, len(val))
		copy(cp, val)
		model[key] = cp
		got, err := get(t, h, s, key)
		return err == nil && bytes.Equal(got, model[key])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestUnsupportedOp(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountKVS(t, h)
	r := core.NewRequest(core.OpRename)
	if err := h.Run(t, s, r); err == nil {
		t.Fatal("rename on a KVS succeeded")
	}
}
