package labkvs_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/mods/driver"
	_ "labstor/internal/mods/generic"
	"labstor/internal/mods/labkvs"
	"labstor/internal/mods/modtest"
	"labstor/internal/mods/pushdown"
)

func mountKVS(t *testing.T, h *modtest.Harness) *core.Stack {
	return h.Mount(t, "kv::/k",
		modtest.ChainVertex{UUID: "kvs", Type: labkvs.Type, Attrs: map[string]string{"device": "dev0", "log_mb": "2"}},
		modtest.ChainVertex{UUID: "drv", Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"}},
	)
}

func kvsInstance(t *testing.T, h *modtest.Harness) *labkvs.LabKVS {
	m, _ := h.Registry.Get("kvs")
	return m.(*labkvs.LabKVS)
}

func put(t *testing.T, h *modtest.Harness, s *core.Stack, key string, val []byte) error {
	r := core.NewRequest(core.OpPut)
	r.Key = key
	r.Size = len(val)
	r.Data = val
	return h.Run(t, s, r)
}

func get(t *testing.T, h *modtest.Harness, s *core.Stack, key string) ([]byte, error) {
	r := core.NewRequest(core.OpGet)
	r.Key = key
	if err := h.Run(t, s, r); err != nil {
		return nil, err
	}
	return r.Value, nil
}

func TestPutGetDelHas(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountKVS(t, h)
	val := bytes.Repeat([]byte("v"), 10000) // multi-block value
	if err := put(t, h, s, "k1", val); err != nil {
		t.Fatal(err)
	}
	got, err := get(t, h, s, "k1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val) {
		t.Fatal("value mismatch")
	}
	has := core.NewRequest(core.OpHas)
	has.Key = "k1"
	h.Run(t, s, has)
	if has.Result != 1 {
		t.Fatal("has")
	}
	del := core.NewRequest(core.OpDel)
	del.Key = "k1"
	if err := h.Run(t, s, del); err != nil {
		t.Fatal(err)
	}
	if _, err := get(t, h, s, "k1"); err == nil {
		t.Fatal("get after delete succeeded")
	}
	del2 := core.NewRequest(core.OpDel)
	del2.Key = "k1"
	if err := h.Run(t, s, del2); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestOverwriteReclaimsBlocks(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountKVS(t, h)
	kv := kvsInstance(t, h)
	put(t, h, s, "k", make([]byte, 40960))
	put(t, h, s, "k", []byte("tiny"))
	if kv.Keys() != 1 {
		t.Fatal("keys")
	}
	got, _ := get(t, h, s, "k")
	if string(got) != "tiny" {
		t.Fatalf("overwrite value %q", got)
	}
	// After freeing the old 10 blocks, we can still fill most of the store.
	puts, gets, dels := kv.Stats()
	if puts != 2 || gets != 1 || dels != 0 {
		t.Fatalf("stats %d/%d/%d", puts, gets, dels)
	}
}

func TestScanWithPrefix(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountKVS(t, h)
	for _, k := range []string{"a/1", "a/2", "b/1"} {
		put(t, h, s, k, []byte("x"))
	}
	sc := core.NewRequest(core.OpReaddir)
	sc.Path = "a/"
	h.Run(t, s, sc)
	if len(sc.Names) != 2 || sc.Names[0] != "a/1" {
		t.Fatalf("scan %v", sc.Names)
	}
	all := core.NewRequest(core.OpReaddir)
	h.Run(t, s, all)
	if len(all.Names) != 3 {
		t.Fatalf("scan all %v", all.Names)
	}
}

func TestEmptyKeyRejectedViaGeneric(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := h.Mount(t, "kv::/g",
		modtest.ChainVertex{UUID: "gen", Type: "labstor.generickvs"},
		modtest.ChainVertex{UUID: "kvs2", Type: labkvs.Type, Attrs: map[string]string{"device": "dev0", "log_mb": "2"}},
		modtest.ChainVertex{UUID: "drv2", Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"}},
	)
	r := core.NewRequest(core.OpPut)
	r.Data = []byte("x")
	r.Size = 1
	if err := h.Run(t, s, r); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestReplayRebuildsIndex(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountKVS(t, h)
	vals := map[string][]byte{}
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("key-%02d", i)
		v := bytes.Repeat([]byte{byte(i + 1)}, 1000+i*97)
		put(t, h, s, k, v)
		vals[k] = v
	}
	// Delete some.
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("key-%02d", i)
		del := core.NewRequest(core.OpDel)
		del.Key = k
		h.Run(t, s, del)
		delete(vals, k)
	}
	// Flush the KVS log.
	fl := core.NewRequest(core.OpFsync)
	if err := h.Run(t, s, fl); err != nil {
		t.Fatal(err)
	}

	// Cold restart: fresh instance with replay.
	fresh := &labkvs.LabKVS{}
	if err := fresh.Configure(core.Config{UUID: "kvs", Attrs: map[string]string{
		"device": "dev0", "log_mb": "2", "replay": "true",
	}}, h.Env); err != nil {
		t.Fatal(err)
	}
	h.Registry.Register("kvs", fresh)

	for k, want := range vals {
		got, err := get(t, h, s, k)
		if err != nil {
			t.Fatalf("get %s after replay: %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("replayed value mismatch for %s", k)
		}
	}
	if _, err := get(t, h, s, "key-00"); err == nil {
		t.Fatal("deleted key resurrected")
	}
	if fresh.Keys() != len(vals) {
		t.Fatalf("replayed %d keys, want %d", fresh.Keys(), len(vals))
	}
}

func TestStateUpdatePreservesIndex(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountKVS(t, h)
	put(t, h, s, "persist", []byte("me"))
	next := &labkvs.LabKVS{}
	next.Configure(core.Config{UUID: "kvs", Attrs: map[string]string{"device": "dev0", "log_mb": "2"}}, h.Env)
	if err := h.Registry.Swap("kvs", next); err != nil {
		t.Fatal(err)
	}
	got, err := get(t, h, s, "persist")
	if err != nil || string(got) != "me" {
		t.Fatalf("after upgrade: %q %v", got, err)
	}
}

func TestQuickPutGetModel(t *testing.T) {
	h := modtest.New(t, device.NVMe, 128<<20)
	s := mountKVS(t, h)
	model := map[string][]byte{}
	rng := rand.New(rand.NewSource(5))
	f := func(keyByte uint8, val []byte) bool {
		key := fmt.Sprintf("k%d", keyByte%16)
		if len(val) == 0 || rng.Intn(4) == 0 {
			// Delete path.
			del := core.NewRequest(core.OpDel)
			del.Key = key
			err := h.Run(t, s, del)
			_, existed := model[key]
			delete(model, key)
			return (err == nil) == existed
		}
		if put(t, h, s, key, val) != nil {
			return false
		}
		cp := make([]byte, len(val))
		copy(cp, val)
		model[key] = cp
		got, err := get(t, h, s, key)
		return err == nil && bytes.Equal(got, model[key])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestUnsupportedOp(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountKVS(t, h)
	r := core.NewRequest(core.OpRename)
	if err := h.Run(t, s, r); err == nil {
		t.Fatal("rename on a KVS succeeded")
	}
}

// scanReq builds an OpScan request carrying a pushdown program ref.
func scanReq(prefix, prog string) *core.Request {
	r := core.NewRequest(core.OpScan)
	r.Key = prefix
	r.Prog = prog
	return r
}

func TestScanPushdownFilter(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountKVS(t, h)
	// Records: u32 tag at offset 0; tag 1 for even indices, 2 for odd.
	want := map[string]bool{}
	for i := 0; i < 10; i++ {
		val := make([]byte, 100)
		tag := uint32(2)
		if i%2 == 0 {
			tag = 1
			want[fmt.Sprintf("r/%02d", i)] = true
		}
		binary.LittleEndian.PutUint32(val, tag)
		val[4] = byte(i)
		if err := put(t, h, s, fmt.Sprintf("r/%02d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	put(t, h, s, "other/x", []byte{1, 0, 0, 0}) // outside the prefix

	prog, err := pushdown.Default.Register("tag1", "filter where u32@0 == 1")
	if err != nil {
		t.Fatal(err)
	}
	r := scanReq("r/", prog.Ref)
	if err := h.Run(t, s, r); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	if err := pushdown.DecodeKV(r.Value, func(key string, val []byte) error {
		if len(val) != 100 || binary.LittleEndian.Uint32(val) != 1 {
			return fmt.Errorf("bad match %q: %d bytes tag %d", key, len(val), binary.LittleEndian.Uint32(val))
		}
		got[key] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("matched %v, want %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing match %q", k)
		}
	}
}

func TestScanPushdownAggregate(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountKVS(t, h)
	var wantSum uint64
	for i := 0; i < 8; i++ {
		val := make([]byte, 64)
		binary.LittleEndian.PutUint32(val, uint32(i%2))
		binary.LittleEndian.PutUint64(val[4:], uint64(i*10))
		if i%2 == 1 {
			wantSum += uint64(i * 10)
		}
		put(t, h, s, fmt.Sprintf("a/%d", i), val)
	}
	prog, err := pushdown.Default.Register("sum-odd", "sum u64@4 where u32@0 == 1")
	if err != nil {
		t.Fatal(err)
	}
	// Address by registered name: the mod resolves names too.
	r := scanReq("a/", "sum-odd")
	if err := h.Run(t, s, r); err != nil {
		t.Fatal(err)
	}
	if uint64(r.Result) != wantSum {
		t.Fatalf("sum = %d, want %d", r.Result, wantSum)
	}
	if len(r.Value) != 0 {
		t.Fatalf("aggregate scan emitted %d bytes", len(r.Value))
	}
	_ = prog
}

func TestScanPushdownUnknownProgram(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountKVS(t, h)
	put(t, h, s, "k", []byte{1, 2, 3, 4})
	r := scanReq("", "pd:doesnotexist0000")
	if err := h.Run(t, s, r); !errors.Is(err, pushdown.ErrUnknownProgram) {
		t.Fatalf("unknown program: %v", err)
	}
}

func TestScanPushdownBudgetTrip(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountKVS(t, h)
	for i := 0; i < 4; i++ {
		put(t, h, s, fmt.Sprintf("b/%d", i), make([]byte, 4096))
	}
	prog, err := pushdown.Default.Register("count-all", "count")
	if err != nil {
		t.Fatal(err)
	}
	r := scanReq("b/", prog.Ref)
	r.ProgMaxBytes = 8192 // 4 records × 4096 B blows through this
	if err := h.Run(t, s, r); !errors.Is(err, pushdown.ErrBudget) {
		t.Fatalf("budget trip: %v", err)
	}
}

func TestScanPushdownGateVertex(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	// Gate with a deny-everything-but allow-list sits above the store.
	s := h.Mount(t, "kv::/gated",
		modtest.ChainVertex{UUID: "gate", Type: pushdown.Type, Attrs: map[string]string{
			"allow":              "allowed-*",
			"max_scan_mb":        "1",
			"prog.allowed-count": "count",
			"prog.blocked-count": "count where u32@0 == 0",
		}},
		modtest.ChainVertex{UUID: "kvs3", Type: labkvs.Type, Attrs: map[string]string{"device": "dev0", "log_mb": "2"}},
		modtest.ChainVertex{UUID: "drv3", Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"}},
	)
	put(t, h, s, "g/1", []byte{0, 0, 0, 0})
	put(t, h, s, "g/2", []byte{0, 0, 0, 0})

	ok := scanReq("g/", "allowed-count")
	if err := h.Run(t, s, ok); err != nil {
		t.Fatal(err)
	}
	if ok.Result != 2 {
		t.Fatalf("gated count = %d, want 2", ok.Result)
	}
	if ok.ProgMaxBytes != 1<<20 {
		t.Fatalf("gate did not clamp budget: %d", ok.ProgMaxBytes)
	}

	denied := scanReq("g/", "blocked-count")
	if err := h.Run(t, s, denied); !errors.Is(err, pushdown.ErrDenied) {
		t.Fatalf("gate deny: %v", err)
	}

	// Non-scan traffic passes through the gate untouched.
	got, err := get(t, h, s, "g/1")
	if err != nil || len(got) != 4 {
		t.Fatalf("get through gate: %v %v", got, err)
	}
}
