// Package labkvs implements LabKVS, the paper's example key-value store
// LabMod (§III-E). LabKVS is designed like LabFS — per-worker block
// allocation, a metadata log, an in-memory sharded index — but exposes a
// put/get/remove API that creates keys and stores data in a *single*
// operation, as opposed to the open-modify-close sequence POSIX requires.
// That single-hop data path is the source of the Fig. 9(b) gains.
package labkvs

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"

	"labstor/internal/core"
	"labstor/internal/mods/pushdown"
	"labstor/internal/telemetry"
	"labstor/internal/vtime"
)

// Type is the registered module type name.
const Type = "labstor.labkvs"

// Remaining data-path copy sites (telemetry copies/op audit): full-block
// puts/gets move zero bytes in this module; only block tails and the
// metadata log still stage.
var (
	copyStageTail  = telemetry.CopySite("labkvs.put_stage_tail")
	copyGatherTail = telemetry.CopySite("labkvs.get_gather_tail")
	copyLogStage   = telemetry.CopySite("labkvs.log_stage")
)

func init() {
	core.RegisterType(Type, func() core.Module { return &LabKVS{} })
}

// ErrNoKey is returned for lookups of absent keys.
var ErrNoKey = errors.New("labkvs: no such key")

// record is the in-memory index entry for one key.
type record struct {
	Key    string  `json:"k"`
	Size   int     `json:"z"`
	Blocks []int64 `json:"b"`
	Owner  int     `json:"u,omitempty"`
	Dead   bool    `json:"d,omitempty"` // tombstone (log only)
}

type kvShard struct {
	mu    sync.RWMutex
	vlock vtime.Lock
	recs  map[string]*record
}

// LabKVS is the key-value store module instance.
type LabKVS struct {
	core.Base

	blockSize int
	logBlocks int64
	dataFirst int64

	shards []kvShard

	allocMu sync.Mutex
	free    []int64

	logMu   sync.Mutex
	logBuf  []byte
	logHead int64

	needReplay bool
	replayMu   sync.Mutex

	puts atomic64
	gets atomic64
	dels atomic64

	// opCount maps each handled op to its runtime metrics counter
	// ("labkvs.<uuid>.<op>"); built in Configure, read-only after.
	opCount map[core.Op]*telemetry.Counter
	// pdStats are the shared pushdown.* counters (scan-with-predicate).
	pdStats pushdown.Stats
}

type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) inc() { a.mu.Lock(); a.v++; a.mu.Unlock() }
func (a *atomic64) get() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}

// Info describes the module.
func (k *LabKVS) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: Type, Version: "1.0", Consumes: core.APIKV, Produces: core.APIBlock}
}

// Configure reads geometry: device (required), block_kb (default 4),
// log_mb (default 8), shards (default 64), replay ("true" to rebuild from
// the device log).
func (k *LabKVS) Configure(cfg core.Config, env *core.Env) error {
	if err := k.Base.Configure(cfg, env); err != nil {
		return err
	}
	devName := cfg.Attr("device", "")
	if devName == "" {
		return fmt.Errorf("labkvs: vertex %q needs a 'device' attribute", cfg.UUID)
	}
	dev, err := env.Device(devName)
	if err != nil {
		return err
	}
	blockKB, _ := strconv.Atoi(cfg.Attr("block_kb", "4"))
	if blockKB < 1 {
		blockKB = 4
	}
	k.blockSize = blockKB << 10
	logMB, _ := strconv.Atoi(cfg.Attr("log_mb", "8"))
	if logMB < 1 {
		logMB = 8
	}
	k.logBlocks = int64(logMB<<20) / int64(k.blockSize)
	total := dev.Capacity() / int64(k.blockSize)
	if total <= k.logBlocks {
		return fmt.Errorf("labkvs: device %q too small", devName)
	}
	k.dataFirst = k.logBlocks
	nShards, _ := strconv.Atoi(cfg.Attr("shards", "64"))
	if nShards < 1 {
		nShards = 1
	}
	k.shards = make([]kvShard, nShards)
	for i := range k.shards {
		k.shards[i].recs = make(map[string]*record)
	}
	k.free = make([]int64, 0, total-k.logBlocks)
	for b := total - 1; b >= k.dataFirst; b-- {
		k.free = append(k.free, b)
	}
	k.needReplay = cfg.Attr("replay", "false") == "true"

	if env.Metrics != nil {
		name := cfg.UUID
		if name == "" {
			name = "labkvs"
		}
		k.opCount = make(map[core.Op]*telemetry.Counter)
		for _, op := range []core.Op{
			core.OpPut, core.OpGet, core.OpDel, core.OpHas,
			core.OpReaddir, core.OpFsync, core.OpScan,
		} {
			k.opCount[op] = env.Metrics.Counter("labkvs." + name + "." + op.String())
		}
	}
	k.pdStats = pushdown.Counters(env.Metrics)
	return nil
}

func (k *LabKVS) shard(key string) *kvShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &k.shards[int(h.Sum32())%len(k.shards)]
}

func (k *LabKVS) allocBlocks(n int) ([]int64, error) {
	k.allocMu.Lock()
	defer k.allocMu.Unlock()
	if len(k.free) < n {
		return nil, fmt.Errorf("labkvs: device full")
	}
	out := k.free[len(k.free)-n:]
	blocks := make([]int64, n)
	copy(blocks, out)
	k.free = k.free[:len(k.free)-n]
	return blocks, nil
}

func (k *LabKVS) freeBlocks(bs []int64) {
	k.allocMu.Lock()
	k.free = append(k.free, bs...)
	k.allocMu.Unlock()
}

// Process dispatches a key-value request.
func (k *LabKVS) Process(e *core.Exec, req *core.Request) error {
	if err := k.maybeReplay(e, req); err != nil {
		return err
	}
	if c := k.opCount[req.Op]; c != nil {
		c.Inc()
	}
	switch req.Op {
	case core.OpPut:
		return k.put(e, req)
	case core.OpGet:
		return k.get(e, req)
	case core.OpDel:
		return k.del(e, req)
	case core.OpHas:
		return k.has(req)
	case core.OpReaddir: // scan: list keys with prefix req.Path
		return k.scan(req)
	case core.OpScan: // scan-with-predicate: run a pushdown program in place
		return k.scanExec(e, req)
	case core.OpFsync:
		return k.flushLog(e, req)
	default:
		return fmt.Errorf("labkvs: %w: %s", core.ErrNotSupported, req.Op)
	}
}

func (k *LabKVS) chargeMeta(e *core.Exec, req *core.Request, key string) {
	m := e.Model
	hold := m.LabFSShardLockHold
	release := k.shard(key).vlock.Acquire(req.Clock, hold)
	req.AdvanceTo(release.Add(-hold))
	req.Charge("kv_meta", m.FSMetadata+hold)
}

func (k *LabKVS) put(e *core.Exec, req *core.Request) error {
	k.chargeMeta(e, req, req.Key)
	data := req.Data
	nBlocks := (len(data) + k.blockSize - 1) / k.blockSize
	if nBlocks == 0 {
		nBlocks = 1
	}
	blocks, err := k.allocBlocks(nBlocks)
	if err != nil {
		req.Err = err
		return err
	}
	base := req.Clock
	for i, phys := range blocks {
		child := req.Child(core.OpBlockWrite)
		child.Clock = base
		child.Offset = phys * int64(k.blockSize)
		lo := i * k.blockSize
		hi := lo + k.blockSize
		child.Size = k.blockSize
		var staged []byte
		if hi <= len(data) {
			// Full block: pass the payload slice straight down — the
			// borrowed view goes device-ward with zero staging copies.
			child.Data = data[lo:hi]
			if req.Buf.Valid() {
				child.Buf = req.Buf.Slice(lo, hi)
			}
		} else {
			// Tail block: stage into a zero-padded scratch block (the
			// device writes whole blocks; arena buffers come back dirty).
			hi = len(data)
			staged = core.AcquireBuf(k.blockSize)
			n := copy(staged, data[lo:hi])
			copyStageTail.Add(n)
			for j := n; j < len(staged); j++ {
				staged[j] = 0
			}
			child.Data = staged
		}
		err := e.Next(child)
		child.Data = nil
		child.Buf = core.BufHandle{}
		if staged != nil {
			core.ReleaseBuf(staged)
		}
		if err != nil {
			return err
		}
		req.Absorb(child)
	}

	sh := k.shard(req.Key)
	sh.mu.Lock()
	old := sh.recs[req.Key]
	rec := &record{Key: req.Key, Size: len(data), Blocks: blocks, Owner: req.Cred.UID}
	sh.recs[req.Key] = rec
	sh.mu.Unlock()
	if old != nil {
		k.freeBlocks(old.Blocks)
	}
	if err := k.logAppend(e, req, rec); err != nil {
		return err
	}
	k.puts.inc()
	req.Result = int64(len(data))
	return nil
}

func (k *LabKVS) get(e *core.Exec, req *core.Request) error {
	k.chargeMeta(e, req, req.Key)
	sh := k.shard(req.Key)
	sh.mu.RLock()
	rec, ok := sh.recs[req.Key]
	sh.mu.RUnlock()
	if !ok {
		req.Err = fmt.Errorf("%w: %q", ErrNoKey, req.Key)
		return req.Err
	}
	// Arena-backed result handle: block reads land directly in the result
	// buffer (no per-block bounce), and downstream caches may retain the
	// stack-owned views instead of copying. Recycled when the last holder
	// releases.
	out := req.CompleteValue(rec.Size)
	base := req.Clock
	var scratch []byte
	for i, phys := range rec.Blocks {
		child := req.Child(core.OpBlockRead)
		child.Clock = base
		child.Offset = phys * int64(k.blockSize)
		child.Size = k.blockSize
		lo := i * k.blockSize
		hi := lo + k.blockSize
		switch {
		case hi <= rec.Size:
			// Full block: read straight into the result view.
			child.Data = out[lo:hi]
			child.Buf = req.ValueH.Slice(lo, hi)
		case lo+k.blockSize <= cap(out):
			// Tail block, but the result buffer's class capacity has room
			// for the full device block — still a direct read.
			child.Data = out[lo : lo+k.blockSize]
		default:
			// Tail block with no slack (heap-fallback sizes): bounce
			// through scratch and copy the live prefix.
			if scratch == nil {
				scratch = core.AcquireBuf(k.blockSize)
			}
			child.Data = scratch
		}
		err := e.Next(child)
		child.Data = nil
		child.Buf = core.BufHandle{}
		if err != nil {
			if scratch != nil {
				core.ReleaseBuf(scratch)
			}
			return err
		}
		req.Absorb(child)
		if scratch != nil && hi > rec.Size {
			hi = rec.Size
			copyGatherTail.Add(hi - lo)
			copy(out[lo:hi], scratch[:hi-lo])
		}
	}
	if scratch != nil {
		core.ReleaseBuf(scratch)
	}
	req.Result = int64(rec.Size)
	k.gets.inc()
	return nil
}

func (k *LabKVS) del(e *core.Exec, req *core.Request) error {
	k.chargeMeta(e, req, req.Key)
	sh := k.shard(req.Key)
	sh.mu.Lock()
	rec, ok := sh.recs[req.Key]
	if ok {
		delete(sh.recs, req.Key)
	}
	sh.mu.Unlock()
	if !ok {
		req.Err = fmt.Errorf("%w: %q", ErrNoKey, req.Key)
		return req.Err
	}
	k.freeBlocks(rec.Blocks)
	k.dels.inc()
	return k.logAppend(e, req, &record{Key: req.Key, Dead: true})
}

func (k *LabKVS) has(req *core.Request) error {
	sh := k.shard(req.Key)
	sh.mu.RLock()
	_, ok := sh.recs[req.Key]
	sh.mu.RUnlock()
	if ok {
		req.Result = 1
	}
	return nil
}

func (k *LabKVS) scan(req *core.Request) error {
	var keys []string
	for i := range k.shards {
		sh := &k.shards[i]
		sh.mu.RLock()
		for key := range sh.recs {
			if req.Path == "" || strings.HasPrefix(key, req.Path) {
				keys = append(keys, key)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(keys)
	req.Names = keys
	req.Result = int64(len(keys))
	return nil
}

// scanExec runs a registered pushdown program over every record whose key
// matches the request prefix (Key, falling back to Path) — the
// scan-with-predicate path. Record blocks are read through the stack
// below with no destination buffer, so a warm LRU hands back retained
// in-place views (0 payload copies) and a cold read lands one DMA fill;
// the program evaluates against those views and only matches (or a
// scalar aggregate) travel up. Without a program ref this degrades to the
// key-listing scan.
func (k *LabKVS) scanExec(e *core.Exec, req *core.Request) error {
	if req.Prog == "" {
		if req.Path == "" {
			req.Path = req.Key
		}
		return k.scan(req)
	}
	prog, ok := pushdown.Default.Lookup(req.Prog)
	if !ok {
		req.Err = fmt.Errorf("%w: %q", pushdown.ErrUnknownProgram, req.Prog)
		return nil
	}
	prefix := req.Key
	if prefix == "" {
		prefix = req.Path
	}
	k.chargeMeta(e, req, prefix)
	// Snapshot matching records under the shard locks; block reads happen
	// outside them (records are immutable once installed — puts replace
	// the *record pointer, and freed blocks of replaced records are only
	// rewritten by later puts, which this scan is unordered against
	// anyway).
	var recs []*record
	for i := range k.shards {
		sh := &k.shards[i]
		sh.mu.RLock()
		for key, rec := range sh.recs {
			if prefix == "" || strings.HasPrefix(key, prefix) {
				recs = append(recs, rec)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })

	ev := pushdown.NewEval(prog, pushdown.EmitKV, req.ProgMaxBytes, req.ProgMaxSteps)
	chunks := make([][]byte, 0, 4)
	handles := make([]core.BufHandle, 0, 4)
	for _, rec := range recs {
		chunks = chunks[:0]
		handles = handles[:0]
		for i, phys := range rec.Blocks {
			child := req.Child(core.OpBlockRead)
			child.Offset = phys * int64(k.blockSize)
			child.Size = k.blockSize
			err := e.Next(child)
			req.Absorb(child)
			if err != nil || child.Err != nil {
				if child.ValueH.Valid() {
					child.ValueH.Release()
				}
				for _, h := range handles {
					h.Release()
				}
				if err == nil {
					err = child.Err
				}
				req.Err = err
				return err
			}
			lo := i * k.blockSize
			hi := lo + k.blockSize
			if hi > rec.Size {
				hi = rec.Size
			}
			view := child.Value
			if view == nil {
				view = child.Data
			}
			chunks = append(chunks, view[:hi-lo])
			if child.ValueH.Valid() {
				handles = append(handles, child.ValueH)
			}
		}
		_, err := ev.Record(rec.Key, chunks...)
		for _, h := range handles {
			h.Release()
		}
		if err != nil {
			k.pdStats.BudgetTrips.Inc()
			k.finishScan(e, req, ev)
			req.Err = err
			return nil
		}
	}
	k.finishScan(e, req, ev)
	ev.Finish(req)
	return nil
}

// finishScan charges the evaluated bytes and publishes pushdown.* counters.
func (k *LabKVS) finishScan(e *core.Exec, req *core.Request, ev *pushdown.Eval) {
	req.Charge("pushdown", e.Model.Pushdown(int(ev.BytesScanned())))
	k.pdStats.Execs.Inc()
	k.pdStats.Records.Add(ev.Records())
	k.pdStats.Bytes.Add(ev.BytesScanned())
	k.pdStats.Matches.Add(ev.Matched())
	k.pdStats.EmitBytes.Add(ev.EmitBytes())
}

// --- log ----------------------------------------------------------------------

func (k *LabKVS) logAppend(e *core.Exec, req *core.Request, rec *record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	k.logMu.Lock()
	var full []byte
	var at int64 = -1
	if len(k.logBuf)+len(line) > k.blockSize {
		full = make([]byte, k.blockSize)
		copyLogStage.Add(copy(full, k.logBuf))
		at = k.logHead
		k.logHead++
		if k.logHead >= k.logBlocks {
			k.logHead = 0 // wrap: index rebuild tests keep logs small
		}
		k.logBuf = nil
	}
	k.logBuf = append(k.logBuf, line...)
	k.logMu.Unlock()
	if full != nil {
		child := req.Child(core.OpBlockWrite)
		child.Offset = at * int64(k.blockSize)
		child.Size = len(full)
		child.Data = full
		return e.SpawnNext(req, child)
	}
	return nil
}

func (k *LabKVS) flushLog(e *core.Exec, req *core.Request) error {
	k.logMu.Lock()
	blk := make([]byte, k.blockSize)
	copyLogStage.Add(copy(blk, k.logBuf))
	at := k.logHead
	k.logMu.Unlock()
	child := req.Child(core.OpBlockWrite)
	child.Offset = at * int64(k.blockSize)
	child.Size = len(blk)
	child.Data = blk
	return e.SpawnNext(req, child)
}

func (k *LabKVS) maybeReplay(e *core.Exec, req *core.Request) error {
	k.replayMu.Lock()
	defer k.replayMu.Unlock()
	if !k.needReplay {
		return nil
	}
	k.needReplay = false
	used := make(map[int64]bool)
	for b := int64(0); b < k.logBlocks; b++ {
		child := req.Child(core.OpBlockRead)
		child.Offset = b * int64(k.blockSize)
		child.Size = k.blockSize
		child.Data = make([]byte, k.blockSize)
		if err := e.SpawnNext(req, child); err != nil {
			return err
		}
		if child.Data[0] == 0 {
			break
		}
		k.logHead = b + 1
		for _, line := range strings.Split(strings.TrimRight(string(child.Data), "\x00"), "\n") {
			if line == "" {
				continue
			}
			var rec record
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				continue // torn tail
			}
			sh := k.shard(rec.Key)
			sh.mu.Lock()
			if rec.Dead {
				if old, ok := sh.recs[rec.Key]; ok {
					for _, blk := range old.Blocks {
						delete(used, blk)
					}
					delete(sh.recs, rec.Key)
				}
			} else {
				r := rec
				sh.recs[rec.Key] = &r
				for _, blk := range rec.Blocks {
					used[blk] = true
				}
			}
			sh.mu.Unlock()
		}
	}
	// Rebuild the free list.
	k.allocMu.Lock()
	k.free = k.free[:0]
	maxBlock := k.dataFirst + int64(cap(k.free))
	_ = maxBlock
	k.allocMu.Unlock()
	total := int64(0)
	if dev, err := k.Env.Device(k.Cfg.Attr("device", "")); err == nil {
		total = dev.Capacity() / int64(k.blockSize)
	}
	k.allocMu.Lock()
	for b := total - 1; b >= k.dataFirst; b-- {
		if !used[b] {
			k.free = append(k.free, b)
		}
	}
	k.allocMu.Unlock()
	return nil
}

// --- lifecycle ----------------------------------------------------------------

// Keys returns the number of live keys.
func (k *LabKVS) Keys() int {
	n := 0
	for i := range k.shards {
		sh := &k.shards[i]
		sh.mu.RLock()
		n += len(sh.recs)
		sh.mu.RUnlock()
	}
	return n
}

// Stats returns op counters.
func (k *LabKVS) Stats() (puts, gets, dels int64) {
	return k.puts.get(), k.gets.get(), k.dels.get()
}

// StateUpdate adopts the previous instance's index, free list and log.
func (k *LabKVS) StateUpdate(prev core.Module) error {
	old, ok := prev.(*LabKVS)
	if !ok {
		return nil
	}
	k.shards = old.shards
	k.free = old.free
	k.logBuf = old.logBuf
	k.logHead = old.logHead
	k.blockSize = old.blockSize
	k.logBlocks = old.logBlocks
	k.dataFirst = old.dataFirst
	k.needReplay = false
	return nil
}

// StateRepair schedules an index rebuild from the device log.
func (k *LabKVS) StateRepair() error {
	k.replayMu.Lock()
	k.needReplay = true
	k.replayMu.Unlock()
	return nil
}

// EstProcessingTime classifies LabKVS ops.
func (k *LabKVS) EstProcessingTime(op core.Op, size int) vtime.Duration {
	m := k.Env.Model
	blocks := vtime.Duration(size/k.blockSize + 1)
	return m.FSMetadata + blocks*m.LabFSShardLockHold
}
