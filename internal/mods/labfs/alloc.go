package labfs

import (
	"errors"
	"sync"
)

// ErrNoSpace is returned when every allocator pool is empty.
var ErrNoSpace = errors.New("labfs: device full")

// allocator is LabFS's scalable per-worker block allocator (paper §III-E):
// device blocks are divided evenly among a pool per worker, so concurrent
// workers allocate without contention; a worker whose pool runs dry steals
// half the free blocks of the richest pool. Pools can be added and removed
// as the Work Orchestrator scales the worker set.
type allocator struct {
	mu    sync.Mutex
	pools [][]int64 // free block numbers, per pool
}

// newAllocator divides blocks [first, first+count) among n pools.
func newAllocator(n int, first, count int64) *allocator {
	if n < 1 {
		n = 1
	}
	a := &allocator{pools: make([][]int64, n)}
	per := count / int64(n)
	b := first
	for i := 0; i < n; i++ {
		take := per
		if i == n-1 {
			take = first + count - b
		}
		pool := make([]int64, 0, take)
		for j := int64(0); j < take; j++ {
			pool = append(pool, b)
			b++
		}
		a.pools[i] = pool
	}
	return a
}

// newEmptyAllocator creates n empty pools (used before log replay rebuilds
// the free lists).
func newEmptyAllocator(n int) *allocator {
	if n < 1 {
		n = 1
	}
	return &allocator{pools: make([][]int64, n)}
}

func (a *allocator) poolFor(worker int) int {
	if worker < 0 {
		worker = -worker
	}
	return worker % len(a.pools)
}

// Alloc returns a free block for the given worker, stealing from the
// richest pool when the worker's own pool is empty.
func (a *allocator) Alloc(worker int) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p := a.poolFor(worker)
	if len(a.pools[p]) == 0 {
		// Steal half of the richest pool's free blocks.
		richest, max := -1, 0
		for i, pool := range a.pools {
			if len(pool) > max {
				richest, max = i, len(pool)
			}
		}
		if richest < 0 || max == 0 {
			return 0, ErrNoSpace
		}
		take := (max + 1) / 2
		src := a.pools[richest]
		a.pools[p] = append(a.pools[p], src[len(src)-take:]...)
		a.pools[richest] = src[:len(src)-take]
	}
	pool := a.pools[p]
	blk := pool[len(pool)-1]
	a.pools[p] = pool[:len(pool)-1]
	return blk, nil
}

// Free returns a block to the worker's pool.
func (a *allocator) Free(worker int, blk int64) {
	a.mu.Lock()
	p := a.poolFor(worker)
	a.pools[p] = append(a.pools[p], blk)
	a.mu.Unlock()
}

// MarkUsed removes a specific block from whichever pool holds it (replay).
func (a *allocator) MarkUsed(blk int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, pool := range a.pools {
		for j, b := range pool {
			if b == blk {
				pool[j] = pool[len(pool)-1]
				a.pools[i] = pool[:len(pool)-1]
				return
			}
		}
	}
}

// AddPools grows the pool set to n; new pools start empty and fill via
// stealing (paper: new workers steal a configurable number of blocks).
func (a *allocator) AddPools(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for len(a.pools) < n {
		a.pools = append(a.pools, nil)
	}
}

// RemovePool retires pool i, redistributing its free blocks round-robin to
// the remaining pools (paper: free blocks of decommissioned workers are
// assigned to running workers).
func (a *allocator) RemovePool(i int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if i < 0 || i >= len(a.pools) || len(a.pools) == 1 {
		return
	}
	orphans := a.pools[i]
	a.pools = append(a.pools[:i], a.pools[i+1:]...)
	for j, b := range orphans {
		p := j % len(a.pools)
		a.pools[p] = append(a.pools[p], b)
	}
}

// FreeBlocks returns the total number of free blocks.
func (a *allocator) FreeBlocks() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var n int64
	for _, pool := range a.pools {
		n += int64(len(pool))
	}
	return n
}

// Pools returns the number of pools.
func (a *allocator) Pools() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pools)
}

// PoolSizes returns the per-pool free counts (diagnostics/tests).
func (a *allocator) PoolSizes() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]int, len(a.pools))
	for i, p := range a.pools {
		out[i] = len(p)
	}
	return out
}
