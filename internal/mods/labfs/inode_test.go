package labfs

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestInodeShardHash checks the inlined FNV-1a shard hash spreads paths and
// is stable for a given path (Get must find what Put stored).
func TestInodeShardHash(t *testing.T) {
	tbl := newInodeTable(16)
	hit := make(map[int]bool)
	for i := 0; i < 256; i++ {
		p := fmt.Sprintf("/dir-%d/file-%d", i%7, i)
		if tbl.shard(p) != tbl.shard(p) {
			t.Fatalf("shard(%q) is not stable", p)
		}
		hit[tbl.shardIndex(p)] = true
	}
	if len(hit) < 8 {
		t.Fatalf("256 paths landed on only %d/16 shards", len(hit))
	}
}

// TestInodeRenameAtomicVisibility races concurrent readers against a rename
// from a to b. Readers check the source first, then the destination: with
// the inode moving a -> b exactly once, a reader that misses a (the rename
// already removed it) must hit b — the Delete-then-Put implementation
// exposes a window where both lookups miss. Repeated over many trials so
// the race detector and the invariant both get real interleavings.
func TestInodeRenameAtomicVisibility(t *testing.T) {
	tbl := newInodeTable(16)
	trials := 400
	if testing.Short() {
		trials = 50
	}
	for trial := 0; trial < trials; trial++ {
		a := fmt.Sprintf("/a/f%d", trial)
		b := fmt.Sprintf("/b/f%d", trial)
		tbl.Put(&inode{Path: a})
		var ready atomic.Int32
		var renamed atomic.Bool
		var gap atomic.Bool
		var wg sync.WaitGroup
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ready.Add(1)
				// Poll for the whole rename window (plus one final pass so a
				// gap opened just before the flag flip is still observed).
				for {
					fin := renamed.Load()
					_, okA := tbl.Get(a)
					runtime.Gosched() // widen the observation window
					_, okB := tbl.Get(b)
					if !okA && !okB {
						gap.Store(true)
						return
					}
					if fin {
						return
					}
				}
			}()
		}
		// Don't rename until both readers are actually polling, so the
		// rename's critical window is guaranteed to be observed.
		for ready.Load() < 2 {
			runtime.Gosched()
		}
		if err := tbl.Rename(a, b); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		renamed.Store(true)
		wg.Wait()
		if gap.Load() {
			t.Fatalf("trial %d: inode invisible under both %q and %q (rename not atomic)", trial, a, b)
		}
		if _, ok := tbl.Delete(b); !ok {
			t.Fatalf("trial %d: inode missing at %q after rename", trial, b)
		}
	}
	if tbl.Count() != 0 {
		t.Fatalf("Count = %d, want 0", tbl.Count())
	}
}

// TestInodeRenameSameShard covers the single-lock fast path.
func TestInodeRenameSameShard(t *testing.T) {
	tbl := newInodeTable(1) // one shard: from/to always collide
	tbl.Put(&inode{Path: "/x"})
	if err := tbl.Rename("/x", "/y"); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Get("/x"); ok {
		t.Fatal("/x still visible after rename")
	}
	ino, ok := tbl.Get("/y")
	if !ok || ino.Path != "/y" {
		t.Fatalf("get /y: %v %v", ino, ok)
	}
	if err := tbl.Rename("/nope", "/z"); err == nil {
		t.Fatal("rename of missing path must fail")
	}
}

// TestInodeRenameConcurrentDistinct runs many concurrent renames of distinct
// files across shards under -race: all must land, none may be lost.
func TestInodeRenameConcurrentDistinct(t *testing.T) {
	tbl := newInodeTable(8)
	const n = 64
	for i := 0; i < n; i++ {
		tbl.Put(&inode{Path: fmt.Sprintf("/src/f%d", i)})
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := tbl.Rename(fmt.Sprintf("/src/f%d", i), fmt.Sprintf("/dst/f%d", i)); err != nil {
				t.Errorf("rename f%d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if tbl.Count() != n {
		t.Fatalf("Count = %d, want %d", tbl.Count(), n)
	}
	for i := 0; i < n; i++ {
		if _, ok := tbl.Get(fmt.Sprintf("/dst/f%d", i)); !ok {
			t.Fatalf("/dst/f%d missing", i)
		}
	}
}
