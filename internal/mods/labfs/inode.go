package labfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"labstor/internal/vtime"
)

// inode is LabFS's in-memory file metadata. As opposed to storing inodes
// and bitmaps on disk, LabFS stores only the metadata log and reconstructs
// inodes in memory by traversing it (paper §III-E).
type inode struct {
	Path  string
	IsDir bool
	Mode  uint32
	UID   int
	GID   int
	Size  int64
	// Blocks maps a 4KB-aligned file block index to its physical device
	// block number.
	Blocks map[int64]int64
	// Provenance.
	CreatedBy  int
	CreatedSeq uint64
	LastWriter int
}

// inodeTable is the sharded hashmap holding all inodes. Sharding keeps
// insert/rename/delete nearly contention-free — the property behind
// LabFS's metadata scalability in Fig. 7. Each shard pairs a real mutex
// (functional safety) with a virtual-time lock (modeled contention).
type inodeTable struct {
	shards []inodeShard
}

type inodeShard struct {
	mu     sync.RWMutex
	vlock  vtime.Lock
	inodes map[string]*inode
}

func newInodeTable(shards int) *inodeTable {
	if shards < 1 {
		shards = 1
	}
	t := &inodeTable{shards: make([]inodeShard, shards)}
	for i := range t.shards {
		t.shards[i].inodes = make(map[string]*inode)
	}
	return t
}

// fnv32a is FNV-1a inlined over the string bytes: the hash/fnv digest
// allocates on every lookup (and forces a []byte conversion of path), which
// put one heap object per metadata op on the hot path.
func fnv32a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

func (t *inodeTable) shard(path string) *inodeShard {
	return &t.shards[t.shardIndex(path)]
}

func (t *inodeTable) shardIndex(path string) int {
	return int(fnv32a(path)) % len(t.shards)
}

// vlockFor exposes the shard's virtual-time lock for modeled charging.
func (t *inodeTable) vlockFor(path string) *vtime.Lock { return &t.shard(path).vlock }

// Get returns the inode for path.
func (t *inodeTable) Get(path string) (*inode, bool) {
	s := t.shard(path)
	s.mu.RLock()
	ino, ok := s.inodes[path]
	s.mu.RUnlock()
	return ino, ok
}

// Put inserts or replaces an inode.
func (t *inodeTable) Put(ino *inode) {
	s := t.shard(ino.Path)
	s.mu.Lock()
	s.inodes[ino.Path] = ino
	s.mu.Unlock()
}

// Create inserts a fresh inode unless the path exists; it returns the
// inode and whether it was created.
func (t *inodeTable) Create(ino *inode) (*inode, bool) {
	s := t.shard(ino.Path)
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.inodes[ino.Path]; ok {
		return existing, false
	}
	s.inodes[ino.Path] = ino
	return ino, true
}

// Delete removes an inode, returning it.
func (t *inodeTable) Delete(path string) (*inode, bool) {
	s := t.shard(path)
	s.mu.Lock()
	defer s.mu.Unlock()
	ino, ok := s.inodes[path]
	if ok {
		delete(s.inodes, path)
	}
	return ino, ok
}

// Rename atomically moves an inode to a new path. Both shards are locked
// for the whole move — in index order when they differ, once when they
// coincide — so a concurrent Get never observes the window where the inode
// exists under neither path (the race a Delete-then-Put sequence opens).
func (t *inodeTable) Rename(from, to string) error {
	fi, ti := t.shardIndex(from), t.shardIndex(to)
	fs, ts := &t.shards[fi], &t.shards[ti]
	switch {
	case fi == ti:
		fs.mu.Lock()
		defer fs.mu.Unlock()
	case fi < ti:
		fs.mu.Lock()
		ts.mu.Lock()
		defer fs.mu.Unlock()
		defer ts.mu.Unlock()
	default:
		ts.mu.Lock()
		fs.mu.Lock()
		defer ts.mu.Unlock()
		defer fs.mu.Unlock()
	}
	ino, ok := fs.inodes[from]
	if !ok {
		return fmt.Errorf("labfs: rename: %q does not exist", from)
	}
	delete(fs.inodes, from)
	ino.Path = to
	ts.inodes[to] = ino
	return nil
}

// List returns the names of the immediate children of dir.
func (t *inodeTable) List(dir string) []string {
	prefix := strings.TrimSuffix(dir, "/")
	if prefix != "" {
		prefix += "/"
	}
	seen := make(map[string]bool)
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for p := range s.inodes {
			if p == dir || !strings.HasPrefix(p, prefix) {
				continue
			}
			rest := strings.TrimPrefix(p, prefix)
			if rest == "" {
				continue
			}
			if j := strings.Index(rest, "/"); j >= 0 {
				rest = rest[:j]
			}
			seen[rest] = true
		}
		s.mu.RUnlock()
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Count returns the number of inodes.
func (t *inodeTable) Count() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.inodes)
		s.mu.RUnlock()
	}
	return n
}

// ForEach visits every inode (snapshot per shard).
func (t *inodeTable) ForEach(fn func(*inode)) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		snap := make([]*inode, 0, len(s.inodes))
		for _, ino := range s.inodes {
			snap = append(snap, ino)
		}
		s.mu.RUnlock()
		for _, ino := range snap {
			fn(ino)
		}
	}
}

// Clear drops all inodes (used before a replay).
func (t *inodeTable) Clear() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.inodes = make(map[string]*inode)
		s.mu.Unlock()
	}
}
