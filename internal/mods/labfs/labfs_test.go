package labfs_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/mods/driver"
	"labstor/internal/mods/labfs"
	"labstor/internal/mods/modtest"
	"labstor/internal/mods/pushdown"
)

func mountFS(t *testing.T, h *modtest.Harness, uuid string, attrs map[string]string) *core.Stack {
	if attrs == nil {
		attrs = map[string]string{}
	}
	if attrs["device"] == "" {
		attrs["device"] = "dev0"
	}
	if attrs["log_mb"] == "" {
		attrs["log_mb"] = "4"
	}
	return h.Mount(t, "fs::/"+uuid,
		modtest.ChainVertex{UUID: uuid, Type: labfs.Type, Attrs: attrs},
		modtest.ChainVertex{UUID: uuid + "-drv", Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"}},
	)
}

func fsInstance(t *testing.T, h *modtest.Harness, uuid string) *labfs.LabFS {
	m, err := h.Registry.Get(uuid)
	if err != nil {
		t.Fatal(err)
	}
	return m.(*labfs.LabFS)
}

func TestWriteReadRoundTrip(t *testing.T) {
	h := modtest.New(t, device.NVMe, 128<<20)
	s := mountFS(t, h, "fs", nil)
	data := bytes.Repeat([]byte("0123456789"), 2000) // 20000 bytes, crosses blocks
	if err := h.Run(t, s, modtest.WriteReq("a.bin", 0, data)); err != nil {
		t.Fatal(err)
	}
	r := modtest.ReadReq("a.bin", 0, len(data))
	if err := h.Run(t, s, r); err != nil {
		t.Fatal(err)
	}
	if r.Result != int64(len(data)) || !bytes.Equal(r.Data, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestOverwriteInPlace(t *testing.T) {
	h := modtest.New(t, device.NVMe, 128<<20)
	s := mountFS(t, h, "fs", nil)
	h.Run(t, s, modtest.WriteReq("f", 0, bytes.Repeat([]byte{1}, 8192)))
	free := fsInstance(t, h, "fs").FreeBlocks()
	// Overwriting the same range must not allocate new blocks.
	if err := h.Run(t, s, modtest.WriteReq("f", 0, bytes.Repeat([]byte{2}, 8192))); err != nil {
		t.Fatal(err)
	}
	if got := fsInstance(t, h, "fs").FreeBlocks(); got != free {
		t.Fatalf("overwrite leaked blocks: %d -> %d", free, got)
	}
	r := modtest.ReadReq("f", 0, 8192)
	h.Run(t, s, r)
	if r.Data[0] != 2 || r.Data[8191] != 2 {
		t.Fatal("overwrite content")
	}
}

func TestSparseHolesReadZero(t *testing.T) {
	h := modtest.New(t, device.NVMe, 128<<20)
	s := mountFS(t, h, "fs", nil)
	h.Run(t, s, modtest.WriteReq("s", 100000, []byte("tail")))
	r := modtest.ReadReq("s", 50000, 100)
	h.Run(t, s, r)
	if r.Result != 100 {
		t.Fatalf("hole read result %d", r.Result)
	}
	for _, b := range r.Data {
		if b != 0 {
			t.Fatal("hole nonzero")
		}
	}
}

func TestReadPastEOF(t *testing.T) {
	h := modtest.New(t, device.NVMe, 128<<20)
	s := mountFS(t, h, "fs", nil)
	h.Run(t, s, modtest.WriteReq("f", 0, []byte("12345")))
	r := modtest.ReadReq("f", 3, 100)
	h.Run(t, s, r)
	if r.Result != 2 || string(r.Data[:2]) != "45" {
		t.Fatalf("partial read: %d %q", r.Result, r.Data[:r.Result])
	}
	r2 := modtest.ReadReq("f", 100, 10)
	h.Run(t, s, r2)
	if r2.Result != 0 {
		t.Fatalf("read past EOF returned %d", r2.Result)
	}
}

func TestAppendOp(t *testing.T) {
	h := modtest.New(t, device.NVMe, 128<<20)
	s := mountFS(t, h, "fs", nil)
	h.Run(t, s, modtest.WriteReq("log", 0, []byte("first|")))
	ap := core.NewRequest(core.OpAppend)
	ap.Path = "log"
	ap.Data = []byte("second")
	ap.Size = 6
	if err := h.Run(t, s, ap); err != nil {
		t.Fatal(err)
	}
	r := modtest.ReadReq("log", 0, 12)
	h.Run(t, s, r)
	if string(r.Data[:r.Result]) != "first|second" {
		t.Fatalf("append content %q", r.Data[:r.Result])
	}
}

func TestCreateExclusiveAndTrunc(t *testing.T) {
	h := modtest.New(t, device.NVMe, 128<<20)
	s := mountFS(t, h, "fs", nil)
	cr := core.NewRequest(core.OpCreate)
	cr.Path = "x"
	if err := h.Run(t, s, cr); err != nil {
		t.Fatal(err)
	}
	// O_EXCL on existing fails.
	ex := core.NewRequest(core.OpCreate)
	ex.Path = "x"
	ex.Flags = core.FlagExcl
	if err := h.Run(t, s, ex); err == nil {
		t.Fatal("exclusive create of existing succeeded")
	}
	// O_TRUNC zeroes.
	h.Run(t, s, modtest.WriteReq("x", 0, []byte("data")))
	tr := core.NewRequest(core.OpOpen)
	tr.Path = "x"
	tr.Flags = core.FlagTrunc
	if err := h.Run(t, s, tr); err != nil {
		t.Fatal(err)
	}
	st := core.NewRequest(core.OpStat)
	st.Path = "x"
	h.Run(t, s, st)
	if st.Result != 0 {
		t.Fatalf("size after trunc %d", st.Result)
	}
}

func TestOpenMissingAndDirErrors(t *testing.T) {
	h := modtest.New(t, device.NVMe, 128<<20)
	s := mountFS(t, h, "fs", nil)
	op := core.NewRequest(core.OpOpen)
	op.Path = "ghost"
	if err := h.Run(t, s, op); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	mk := core.NewRequest(core.OpMkdir)
	mk.Path = "dir"
	h.Run(t, s, mk)
	// Open of a directory fails.
	od := core.NewRequest(core.OpOpen)
	od.Path = "dir"
	if err := h.Run(t, s, od); err == nil {
		t.Fatal("open of directory succeeded")
	}
	// Write to a directory fails.
	if err := h.Run(t, s, func() *core.Request {
		r := modtest.WriteReq("dir", 0, []byte("no"))
		r.Flags = 0
		return r
	}()); err == nil {
		t.Fatal("write to directory succeeded")
	}
	// Unlink of a directory fails; rmdir works.
	ul := core.NewRequest(core.OpUnlink)
	ul.Path = "dir"
	if err := h.Run(t, s, ul); err == nil {
		t.Fatal("unlink of directory succeeded")
	}
	rm := core.NewRequest(core.OpRmdir)
	rm.Path = "dir"
	if err := h.Run(t, s, rm); err != nil {
		t.Fatal(err)
	}
}

func TestUnlinkFreesBlocks(t *testing.T) {
	h := modtest.New(t, device.NVMe, 128<<20)
	s := mountFS(t, h, "fs", nil)
	fs := fsInstance(t, h, "fs")
	before := fs.FreeBlocks()
	h.Run(t, s, modtest.WriteReq("big", 0, make([]byte, 64<<10)))
	if fs.FreeBlocks() >= before {
		t.Fatal("write did not allocate")
	}
	ul := core.NewRequest(core.OpUnlink)
	ul.Path = "big"
	if err := h.Run(t, s, ul); err != nil {
		t.Fatal(err)
	}
	if fs.FreeBlocks() != before {
		t.Fatalf("unlink leaked blocks: %d != %d", fs.FreeBlocks(), before)
	}
}

func TestTruncateFreesTail(t *testing.T) {
	h := modtest.New(t, device.NVMe, 128<<20)
	s := mountFS(t, h, "fs", nil)
	fs := fsInstance(t, h, "fs")
	h.Run(t, s, modtest.WriteReq("t", 0, make([]byte, 16<<10)))
	after4 := fs.FreeBlocks()
	tr := core.NewRequest(core.OpTruncate)
	tr.Path = "t"
	tr.Offset = 4096
	if err := h.Run(t, s, tr); err != nil {
		t.Fatal(err)
	}
	if fs.FreeBlocks() != after4+3 {
		t.Fatalf("truncate freed %d blocks, want 3", fs.FreeBlocks()-after4)
	}
	st := core.NewRequest(core.OpStat)
	st.Path = "t"
	h.Run(t, s, st)
	if st.Result != 4096 {
		t.Fatalf("size %d", st.Result)
	}
}

func TestRenameOverExistingReclaimsBlocks(t *testing.T) {
	h := modtest.New(t, device.NVMe, 128<<20)
	s := mountFS(t, h, "fs", nil)
	fs := fsInstance(t, h, "fs")
	h.Run(t, s, modtest.WriteReq("src", 0, bytes.Repeat([]byte{1}, 4096)))
	h.Run(t, s, modtest.WriteReq("dst", 0, bytes.Repeat([]byte{2}, 64<<10)))
	free := fs.FreeBlocks()
	rn := core.NewRequest(core.OpRename)
	rn.Path = "src"
	rn.Path2 = "dst"
	if err := h.Run(t, s, rn); err != nil {
		t.Fatal(err)
	}
	// The 16 blocks of the old dst are reclaimed.
	if got := fs.FreeBlocks(); got != free+16 {
		t.Fatalf("rename leaked: free %d -> %d (want +16)", free, got)
	}
	r := modtest.ReadReq("dst", 0, 4096)
	h.Run(t, s, r)
	if r.Data[0] != 1 {
		t.Fatal("dst does not hold src's content")
	}
	if _, err := h.Run(t, s, modtest.ReadReq("src", 0, 1)), error(nil); err == nil {
		st := core.NewRequest(core.OpStat)
		st.Path = "src"
		if e2 := h.Run(t, s, st); e2 == nil {
			t.Fatal("src still exists after rename")
		}
	}
	// Renaming onto a directory fails.
	mk := core.NewRequest(core.OpMkdir)
	mk.Path = "d"
	h.Run(t, s, mk)
	rn2 := core.NewRequest(core.OpRename)
	rn2.Path = "dst"
	rn2.Path2 = "d"
	if err := h.Run(t, s, rn2); err == nil {
		t.Fatal("rename onto a directory succeeded")
	}
}

func TestLogReplayRebuildsEverything(t *testing.T) {
	h := modtest.New(t, device.NVMe, 128<<20)
	s := mountFS(t, h, "fs", nil)
	content := map[string][]byte{}
	for i := 0; i < 20; i++ {
		path := fmt.Sprintf("dir/file-%02d", i)
		data := bytes.Repeat([]byte{byte(i + 1)}, 3000+i*111)
		if err := h.Run(t, s, modtest.WriteReq(path, 0, data)); err != nil {
			t.Fatal(err)
		}
		content[path] = data
	}
	// Rename and delete a few to exercise those log records.
	rn := core.NewRequest(core.OpRename)
	rn.Path = "dir/file-00"
	rn.Path2 = "dir/renamed"
	h.Run(t, s, rn)
	content["dir/renamed"] = content["dir/file-00"]
	delete(content, "dir/file-00")
	ul := core.NewRequest(core.OpUnlink)
	ul.Path = "dir/file-01"
	h.Run(t, s, ul)
	delete(content, "dir/file-01")
	// Flush the metadata log.
	fy := core.NewRequest(core.OpFsync)
	fy.Path = "dir/renamed"
	if err := h.Run(t, s, fy); err != nil {
		t.Fatal(err)
	}

	// "Crash": build a brand-new LabFS instance over the same device with
	// replay enabled; it must reconstruct all inodes from the on-device log.
	h2 := modtest.New(t, device.NVMe, 0) // placeholder, we reuse dev0
	_ = h2
	reg2 := h.Registry
	fresh := &labfs.LabFS{}
	if err := fresh.Configure(core.Config{UUID: "fs", Attrs: map[string]string{
		"device": "dev0", "log_mb": "4", "replay": "true",
	}}, h.Env); err != nil {
		t.Fatal(err)
	}
	reg2.Register("fs", fresh) // hot-replace without StateUpdate: cold recovery

	for path, want := range content {
		r := modtest.ReadReq(path, 0, len(want))
		if err := h.Run(t, s, r); err != nil {
			t.Fatalf("read %s after replay: %v", path, err)
		}
		if !bytes.Equal(r.Data[:r.Result], want) {
			t.Fatalf("replayed content mismatch for %s", path)
		}
	}
	// Deleted file stays deleted.
	st := core.NewRequest(core.OpStat)
	st.Path = "dir/file-01"
	if err := h.Run(t, s, st); err == nil {
		t.Fatal("unlinked file resurrected by replay")
	}
	if fresh.Files() != len(content)+1 { // +1 for the dir? dirs are implicit unless mkdir'd
		// Directories were never mkdir'd here, so exactly len(content).
		if fresh.Files() != len(content) {
			t.Fatalf("replayed %d files, want %d", fresh.Files(), len(content))
		}
	}
}

func TestCheckpointOnLogPressure(t *testing.T) {
	h := modtest.New(t, device.NVMe, 256<<20)
	// Tiny 1 MiB log forces checkpoints.
	s := mountFS(t, h, "fs", map[string]string{"log_mb": "1"})
	// Each create+write produces several log entries; enough volume to wrap
	// the 256-block log multiple times.
	for i := 0; i < 2000; i++ {
		path := fmt.Sprintf("f-%04d", i%50) // overwrite a rotating set
		if err := h.Run(t, s, modtest.WriteReq(path, int64(i%7)*4096, make([]byte, 4096))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if fsInstance(t, h, "fs").Files() != 50 {
		t.Fatalf("files %d", fsInstance(t, h, "fs").Files())
	}
}

func TestReaddirAndStatMode(t *testing.T) {
	h := modtest.New(t, device.NVMe, 128<<20)
	s := mountFS(t, h, "fs", nil)
	mk := core.NewRequest(core.OpMkdir)
	mk.Path = "d"
	mk.Mode = 0755
	h.Run(t, s, mk)
	for _, n := range []string{"d/b", "d/a", "d/c"} {
		h.Run(t, s, modtest.WriteReq(n, 0, []byte("x")))
	}
	h.Run(t, s, modtest.WriteReq("d/sub/nested", 0, []byte("y")))
	ls := core.NewRequest(core.OpReaddir)
	ls.Path = "d"
	h.Run(t, s, ls)
	want := []string{"a", "b", "c", "sub"}
	if len(ls.Names) != 4 {
		t.Fatalf("readdir %v", ls.Names)
	}
	for i, n := range want {
		if ls.Names[i] != n {
			t.Fatalf("readdir order %v", ls.Names)
		}
	}
	st := core.NewRequest(core.OpStat)
	st.Path = "d"
	h.Run(t, s, st)
	if st.Flags&(1<<16) == 0 {
		t.Fatal("stat of dir missing dir marker")
	}
}

func TestLabFSStateUpdatePreservesEverything(t *testing.T) {
	h := modtest.New(t, device.NVMe, 128<<20)
	s := mountFS(t, h, "fs", nil)
	h.Run(t, s, modtest.WriteReq("keep", 0, []byte("survives upgrades")))
	next := &labfs.LabFS{}
	if err := next.Configure(core.Config{UUID: "fs", Attrs: map[string]string{"device": "dev0", "log_mb": "4"}}, h.Env); err != nil {
		t.Fatal(err)
	}
	if err := h.Registry.Swap("fs", next); err != nil {
		t.Fatal(err)
	}
	r := modtest.ReadReq("keep", 0, 17)
	if err := h.Run(t, s, r); err != nil {
		t.Fatal(err)
	}
	if string(r.Data[:r.Result]) != "survives upgrades" {
		t.Fatal("upgrade lost data")
	}
}

// TestRandomOpsAgainstModel drives LabFS with random operations and checks
// every read against an in-memory reference model.
func TestRandomOpsAgainstModel(t *testing.T) {
	h := modtest.New(t, device.NVMe, 256<<20)
	s := mountFS(t, h, "fs", nil)
	rng := rand.New(rand.NewSource(99))
	model := map[string][]byte{}
	paths := []string{"p0", "p1", "p2", "p3", "p4"}

	extend := func(b []byte, n int) []byte {
		if len(b) >= n {
			return b
		}
		nb := make([]byte, n)
		copy(nb, b)
		return nb
	}

	for step := 0; step < 500; step++ {
		path := paths[rng.Intn(len(paths))]
		switch rng.Intn(5) {
		case 0, 1: // write
			off := int64(rng.Intn(30000))
			n := 1 + rng.Intn(9000)
			data := make([]byte, n)
			rng.Read(data)
			if err := h.Run(t, s, modtest.WriteReq(path, off, data)); err != nil {
				t.Fatalf("step %d write: %v", step, err)
			}
			cur := extend(model[path], int(off)+n)
			copy(cur[off:], data)
			model[path] = cur
		case 2: // read
			want, ok := model[path]
			if !ok {
				continue
			}
			off := int64(rng.Intn(len(want) + 1))
			n := 1 + rng.Intn(8000)
			r := modtest.ReadReq(path, off, n)
			if err := h.Run(t, s, r); err != nil {
				t.Fatalf("step %d read: %v", step, err)
			}
			expect := []byte{}
			if off < int64(len(want)) {
				end := off + int64(n)
				if end > int64(len(want)) {
					end = int64(len(want))
				}
				expect = want[off:end]
			}
			if int64(len(expect)) != r.Result || !bytes.Equal(r.Data[:r.Result], expect) {
				t.Fatalf("step %d read mismatch at %s off=%d n=%d", step, path, off, n)
			}
		case 3: // truncate
			want, ok := model[path]
			if !ok {
				continue
			}
			to := int64(rng.Intn(len(want) + 1))
			tr := core.NewRequest(core.OpTruncate)
			tr.Path = path
			tr.Offset = to
			if err := h.Run(t, s, tr); err != nil {
				t.Fatalf("step %d truncate: %v", step, err)
			}
			model[path] = want[:to]
		case 4: // unlink
			if _, ok := model[path]; !ok {
				continue
			}
			ul := core.NewRequest(core.OpUnlink)
			ul.Path = path
			if err := h.Run(t, s, ul); err != nil {
				t.Fatalf("step %d unlink: %v", step, err)
			}
			delete(model, path)
		}
	}
	// Final verification of all files.
	for path, want := range model {
		r := modtest.ReadReq(path, 0, len(want))
		if err := h.Run(t, s, r); err != nil {
			t.Fatalf("final read %s: %v", path, err)
		}
		if !bytes.Equal(r.Data[:r.Result], want) {
			t.Fatalf("final mismatch %s", path)
		}
	}
}

func TestProvenanceTracking(t *testing.T) {
	h := modtest.New(t, device.NVMe, 128<<20)
	s := mountFS(t, h, "fs", nil)
	fs := fsInstance(t, h, "fs")
	w := modtest.WriteReq("traced", 0, []byte("who wrote this"))
	w.Cred = core.Cred{UID: 501, GID: 501}
	if err := h.Run(t, s, w); err != nil {
		t.Fatal(err)
	}
	w2 := modtest.WriteReq("traced", 0, []byte("someone else did"))
	w2.Flags = 0
	w2.Cred = core.Cred{UID: 777, GID: 777}
	if err := h.Run(t, s, w2); err != nil {
		t.Fatal(err)
	}
	creator, _, last, ok := fs.Provenance("traced")
	if !ok || creator != 501 || last != 777 {
		t.Fatalf("provenance creator=%d last=%d ok=%v", creator, last, ok)
	}
	if _, _, _, ok := fs.Provenance("ghost"); ok {
		t.Fatal("provenance of missing file")
	}
}

func TestConfigureErrors(t *testing.T) {
	h := modtest.New(t, device.NVMe, 1<<20) // 1 MiB device
	f := &labfs.LabFS{}
	if err := f.Configure(core.Config{Attrs: map[string]string{}}, h.Env); err == nil {
		t.Fatal("no device accepted")
	}
	// Log bigger than the device.
	if err := f.Configure(core.Config{Attrs: map[string]string{"device": "dev0", "log_mb": "64"}}, h.Env); err == nil {
		t.Fatal("oversized log accepted")
	}
}

func TestGrepOffload(t *testing.T) {
	h := modtest.New(t, device.NVMe, 128<<20)
	s := mountFS(t, h, "fs", nil)
	// Lines sized so several span block boundaries (block = 4096).
	var data []byte
	var want []string
	for i := 0; i < 200; i++ {
		line := fmt.Sprintf("line %03d %s", i, string(bytes.Repeat([]byte{'x'}, 50+i%37)))
		if i%10 == 0 {
			line += " ERROR hit"
			want = append(want, line)
		}
		data = append(data, line...)
		data = append(data, '\n')
	}
	if err := h.Run(t, s, modtest.WriteReq("app.log", 0, data)); err != nil {
		t.Fatal(err)
	}
	prog, err := pushdown.Default.Register("grep-error", `filter where substr "ERROR"`)
	if err != nil {
		t.Fatal(err)
	}
	r := core.NewRequest(core.OpScan)
	r.Path = "app.log"
	r.Prog = prog.Ref
	if err := h.Run(t, s, r); err != nil {
		t.Fatal(err)
	}
	got := strings.Split(strings.TrimSuffix(string(r.Value), "\n"), "\n")
	if len(got) != len(want) {
		t.Fatalf("grep matched %d lines, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d: %q != %q", i, got[i], want[i])
		}
	}

	// Aggregate flavor: count matches without emitting anything.
	cnt := core.NewRequest(core.OpScan)
	cnt.Path = "app.log"
	cnt.Prog = "grep-error"
	if err := h.Run(t, s, cnt); err != nil {
		t.Fatal(err)
	}
	// grep-error is a filter; register a count program for the same needle.
	cprog, err := pushdown.Default.Register("count-error", `count where substr "ERROR"`)
	if err != nil {
		t.Fatal(err)
	}
	cnt2 := core.NewRequest(core.OpScan)
	cnt2.Path = "app.log"
	cnt2.Prog = cprog.Ref
	if err := h.Run(t, s, cnt2); err != nil {
		t.Fatal(err)
	}
	if int(cnt2.Result) != len(want) {
		t.Fatalf("count = %d, want %d", cnt2.Result, len(want))
	}
}

func TestGrepOffloadErrors(t *testing.T) {
	h := modtest.New(t, device.NVMe, 128<<20)
	s := mountFS(t, h, "fs", nil)

	// No program ref: labfs scans need one.
	bare := core.NewRequest(core.OpScan)
	bare.Path = "missing.log"
	if err := h.Run(t, s, bare); err == nil {
		t.Fatal("scan without program succeeded")
	}

	prog, err := pushdown.Default.Register("grep-x", `filter where substr "x"`)
	if err != nil {
		t.Fatal(err)
	}
	// Missing file.
	r := core.NewRequest(core.OpScan)
	r.Path = "missing.log"
	r.Prog = prog.Ref
	if err := h.Run(t, s, r); !errors.Is(err, labfs.ErrNotFound) {
		t.Fatalf("missing file: %v", err)
	}

	// Budget trip on a large file.
	if err := h.Run(t, s, modtest.WriteReq("big.log", 0, bytes.Repeat([]byte("xy\n"), 8000))); err != nil {
		t.Fatal(err)
	}
	tight := core.NewRequest(core.OpScan)
	tight.Path = "big.log"
	tight.Prog = prog.Ref
	tight.ProgMaxSteps = 10
	if err := h.Run(t, s, tight); !errors.Is(err, pushdown.ErrBudget) {
		t.Fatalf("budget trip: %v", err)
	}
}

func TestGrepOffloadSparse(t *testing.T) {
	h := modtest.New(t, device.NVMe, 128<<20)
	s := mountFS(t, h, "fs", nil)
	// Write a block at offset 8192 leaving a 2-block hole; hole bytes read
	// as zeros and must not break line splitting.
	tail := []byte("hole-end MARK line\n")
	if err := h.Run(t, s, modtest.WriteReq("sparse.bin", 8192, tail)); err != nil {
		t.Fatal(err)
	}
	prog, err := pushdown.Default.Register("grep-mark", `filter where substr "MARK"`)
	if err != nil {
		t.Fatal(err)
	}
	r := core.NewRequest(core.OpScan)
	r.Path = "sparse.bin"
	r.Prog = prog.Ref
	if err := h.Run(t, s, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(r.Value, []byte("MARK")) {
		t.Fatalf("sparse grep missed the marker: %d bytes", len(r.Value))
	}
}
