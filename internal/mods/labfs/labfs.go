// Package labfs implements LabFS, the paper's example POSIX filesystem
// LabMod (§III-E): a log-structured, crash-consistent filesystem with
//
//   - a scalable per-worker block allocator (device blocks divided among
//     worker pools, with stealing);
//   - a per-worker-style metadata log as the only on-device metadata —
//     inodes are reconstructed in memory by traversing the log;
//   - a sharded in-memory inode hashmap supporting insert, rename and
//     delete with minimal contention;
//   - provenance tracking (creator and sequence recorded per inode).
//
// LabFS consumes POSIX file requests and produces block requests for the
// next LabMod in the stack (cache, scheduler, driver, ...).
package labfs

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"labstor/internal/core"
	"labstor/internal/mods/pushdown"
	"labstor/internal/telemetry"
	"labstor/internal/vtime"
)

// Type is the registered module type name.
const Type = "labstor.labfs"

// Remaining data-path copy sites (telemetry copies/op audit): aligned
// full-block reads and writes move zero bytes inside LabFS; only partial
// blocks (bounce/RMW) and metadata-log staging still copy.
var (
	copyReadBounce = telemetry.CopySite("labfs.read_bounce")
	copyRMWStage   = telemetry.CopySite("labfs.rmw_stage")
	copyLogPad     = telemetry.CopySite("labfs.log_pad")
)

func init() {
	core.RegisterType(Type, func() core.Module { return &LabFS{} })
}

// Sentinel errors.
var (
	ErrNotFound = errors.New("labfs: no such file or directory")
	ErrExists   = errors.New("labfs: file exists")
	ErrIsDir    = errors.New("labfs: is a directory")
	ErrNotDir   = errors.New("labfs: not a directory")
	ErrNotEmpty = errors.New("labfs: directory not empty")
)

// LabFS is the filesystem module instance.
type LabFS struct {
	core.Base

	blockSize  int
	logBlocks  int64
	dataFirst  int64 // first data block
	dataBlocks int64

	table *inodeTable
	alloc *allocator
	log   *metaLog

	replayMu   sync.Mutex
	needReplay bool

	statsMu sync.Mutex
	creates int64
	writes  int64
	reads   int64

	// opCount maps each handled op to its runtime metrics counter
	// ("labfs.<uuid>.<op>"). Built once in Configure, read-only after —
	// a map read plus one atomic add per request.
	opCount map[core.Op]*telemetry.Counter
	// pdStats are the shared pushdown.* counters (grep-offload scans).
	pdStats pushdown.Stats
}

// Info describes the module.
func (f *LabFS) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: Type, Version: "1.0", Consumes: core.APIPosix, Produces: core.APIBlock}
}

// Configure reads geometry from attributes:
//
//	device:   name of the backing device (required — sizes the allocator)
//	block_kb: filesystem block size in KiB (default 4)
//	log_mb:   metadata log region size in MiB (default 16)
//	shards:   inode hashmap shard count (default 64)
//	pools:    allocator pools / expected workers (default 16)
//	replay:   "true" to reconstruct state from an existing device log
func (f *LabFS) Configure(cfg core.Config, env *core.Env) error {
	if err := f.Base.Configure(cfg, env); err != nil {
		return err
	}
	devName := cfg.Attr("device", "")
	if devName == "" {
		return fmt.Errorf("labfs: vertex %q needs a 'device' attribute", cfg.UUID)
	}
	dev, err := env.Device(devName)
	if err != nil {
		return err
	}
	blockKB, _ := strconv.Atoi(cfg.Attr("block_kb", "4"))
	if blockKB < 1 {
		blockKB = 4
	}
	f.blockSize = blockKB << 10
	logMB, _ := strconv.Atoi(cfg.Attr("log_mb", "16"))
	if logMB < 1 {
		logMB = 16
	}
	f.logBlocks = int64(logMB<<20) / int64(f.blockSize)
	total := dev.Capacity() / int64(f.blockSize)
	if total <= f.logBlocks {
		return fmt.Errorf("labfs: device %q too small (%d blocks) for a %d-block log", devName, total, f.logBlocks)
	}
	f.dataFirst = f.logBlocks
	f.dataBlocks = total - f.logBlocks

	shards, _ := strconv.Atoi(cfg.Attr("shards", "64"))
	pools, _ := strconv.Atoi(cfg.Attr("pools", "16"))
	f.table = newInodeTable(shards)
	f.alloc = newAllocator(pools, f.dataFirst, f.dataBlocks)
	f.log = newMetaLog(f.blockSize, f.logBlocks)
	f.needReplay = cfg.Attr("replay", "false") == "true"

	if env.Metrics != nil {
		name := cfg.UUID
		if name == "" {
			name = "labfs"
		}
		f.opCount = make(map[core.Op]*telemetry.Counter)
		for _, op := range []core.Op{
			core.OpCreate, core.OpOpen, core.OpMkdir, core.OpWrite, core.OpAppend,
			core.OpRead, core.OpStat, core.OpUnlink, core.OpRmdir, core.OpRename,
			core.OpTruncate, core.OpReaddir, core.OpFsync, core.OpClose,
			core.OpScan,
		} {
			f.opCount[op] = env.Metrics.Counter("labfs." + name + "." + op.String())
		}
	}
	f.pdStats = pushdown.Counters(env.Metrics)
	return nil
}

// BlockSize returns the filesystem block size.
func (f *LabFS) BlockSize() int { return f.blockSize }

// Files returns the number of inodes.
func (f *LabFS) Files() int { return f.table.Count() }

// FreeBlocks returns the allocator's free block count.
func (f *LabFS) FreeBlocks() int64 { return f.alloc.FreeBlocks() }

// Process dispatches a POSIX request.
func (f *LabFS) Process(e *core.Exec, req *core.Request) error {
	if err := f.maybeReplay(e, req); err != nil {
		return err
	}
	if c := f.opCount[req.Op]; c != nil {
		c.Inc()
	}
	switch req.Op {
	case core.OpCreate:
		return f.create(e, req, false)
	case core.OpOpen:
		return f.open(e, req)
	case core.OpMkdir:
		return f.create(e, req, true)
	case core.OpWrite, core.OpAppend:
		return f.write(e, req)
	case core.OpRead:
		return f.read(e, req)
	case core.OpStat:
		return f.stat(req)
	case core.OpUnlink:
		return f.unlink(e, req)
	case core.OpRmdir:
		return f.rmdir(e, req)
	case core.OpRename:
		return f.rename(e, req)
	case core.OpTruncate:
		return f.truncate(e, req)
	case core.OpReaddir:
		return f.readdir(req)
	case core.OpScan:
		return f.scanExec(e, req)
	case core.OpFsync, core.OpClose:
		return f.fsync(e, req)
	default:
		return fmt.Errorf("labfs: %w: %s", core.ErrNotSupported, req.Op)
	}
}

// chargeMeta models the metadata cost of an op: allocation/log/bookkeeping
// CPU plus (brief, sharded) serialization on the inode shard lock.
func (f *LabFS) chargeMeta(e *core.Exec, req *core.Request, path string) {
	model := e.Model
	hold := model.LabFSShardLockHold
	release := f.table.vlockFor(path).Acquire(req.Clock, hold)
	grant := release.Add(-hold)
	req.AdvanceTo(grant) // queueing on the shard (not CPU)
	req.Charge("fs_meta", model.FSMetadata+hold)
}

func (f *LabFS) maybeReplay(e *core.Exec, req *core.Request) error {
	f.replayMu.Lock()
	defer f.replayMu.Unlock()
	if !f.needReplay {
		return nil
	}
	f.needReplay = false
	entries, err := f.log.Replay(e, req)
	if err != nil {
		return fmt.Errorf("labfs: replay: %w", err)
	}
	f.applyEntries(entries)
	return nil
}

// applyEntries rebuilds the inode table and allocator free lists from a
// decoded log.
func (f *LabFS) applyEntries(entries []logEntry) {
	f.table.Clear()
	used := make(map[int64]bool)
	for _, ent := range entries {
		switch ent.Op {
		case logCreate, logMkdir:
			f.table.Put(&inode{
				Path: ent.Path, IsDir: ent.Op == logMkdir, Mode: ent.Mode,
				UID: ent.UID, GID: ent.GID, Blocks: make(map[int64]int64),
				CreatedBy: ent.UID, CreatedSeq: ent.Seq,
			})
		case logUnlink, logRmdir:
			if ino, ok := f.table.Delete(ent.Path); ok {
				for _, phys := range ino.Blocks {
					delete(used, phys)
				}
			}
		case logRename:
			_ = f.table.Rename(ent.Path, ent.Path2)
		case logExtent:
			if ino, ok := f.table.Get(ent.Path); ok {
				ino.Blocks[ent.BlockIdx] = ent.Phys
				used[ent.Phys] = true
			}
		case logSetSize, logTruncate:
			if ino, ok := f.table.Get(ent.Path); ok {
				ino.Size = ent.Size
				if ent.Op == logTruncate {
					limit := (ent.Size + int64(f.blockSize) - 1) / int64(f.blockSize)
					for idx, phys := range ino.Blocks {
						if idx >= limit {
							delete(used, phys)
							delete(ino.Blocks, idx)
						}
					}
				}
			}
		}
	}
	// Rebuild the allocator: everything in the data region not referenced
	// by a live extent is free.
	pools := f.alloc.Pools()
	fresh := newEmptyAllocator(pools)
	per := f.dataBlocks/int64(pools) + 1
	p := 0
	count := int64(0)
	for b := f.dataFirst; b < f.dataFirst+f.dataBlocks; b++ {
		if used[b] {
			continue
		}
		fresh.pools[p] = append(fresh.pools[p], b)
		count++
		if count%per == 0 && p < pools-1 {
			p++
		}
	}
	f.alloc = fresh
}

// logAppend appends an entry, checkpointing the log first if it is nearly
// full.
func (f *LabFS) logAppend(e *core.Exec, req *core.Request, ent logEntry) error {
	f.log.mu.Lock()
	nearFull := f.log.head >= f.log.logBlocks-2
	f.log.mu.Unlock()
	if nearFull {
		if err := f.checkpoint(e, req); err != nil {
			return err
		}
	}
	return f.log.Append(e, req, ent)
}

// checkpoint rewrites the log from scratch as the current state (create +
// extent + size entries per inode), reclaiming log space.
func (f *LabFS) checkpoint(e *core.Exec, req *core.Request) error {
	f.log.Reset()
	var err error
	f.table.ForEach(func(ino *inode) {
		if err != nil {
			return
		}
		op := logCreate
		if ino.IsDir {
			op = logMkdir
		}
		err = f.log.Append(e, req, logEntry{Op: op, Path: ino.Path, Mode: ino.Mode, UID: ino.UID, GID: ino.GID})
		for idx, phys := range ino.Blocks {
			if err != nil {
				return
			}
			err = f.log.Append(e, req, logEntry{Op: logExtent, Path: ino.Path, BlockIdx: idx, Phys: phys})
		}
		if err == nil {
			err = f.log.Append(e, req, logEntry{Op: logSetSize, Path: ino.Path, Size: ino.Size})
		}
	})
	if err != nil {
		return err
	}
	return f.log.Flush(e, req)
}

// --- metadata ops -------------------------------------------------------------

func (f *LabFS) create(e *core.Exec, req *core.Request, dir bool) error {
	f.chargeMeta(e, req, req.Path)
	req.Charge("fs_meta", e.Model.LabFSCreate)
	ino := &inode{
		Path: req.Path, IsDir: dir, Mode: req.Mode,
		UID: req.Cred.UID, GID: req.Cred.GID,
		Blocks:    make(map[int64]int64),
		CreatedBy: req.Cred.UID,
	}
	existing, created := f.table.Create(ino)
	if !created {
		if req.Flags&core.FlagExcl != 0 || dir {
			req.Err = fmt.Errorf("%w: %q", ErrExists, req.Path)
			return req.Err
		}
		if req.Flags&core.FlagTrunc != 0 {
			return f.truncateTo(e, req, existing, 0)
		}
		return nil
	}
	f.statsMu.Lock()
	f.creates++
	f.statsMu.Unlock()
	op := logCreate
	if dir {
		op = logMkdir
	}
	return f.logAppend(e, req, logEntry{Op: op, Path: req.Path, Mode: req.Mode, UID: req.Cred.UID, GID: req.Cred.GID})
}

func (f *LabFS) open(e *core.Exec, req *core.Request) error {
	f.chargeMeta(e, req, req.Path)
	ino, ok := f.table.Get(req.Path)
	if !ok {
		if req.Flags&core.FlagCreate != 0 {
			return f.create(e, req, false)
		}
		req.Err = fmt.Errorf("%w: %q", ErrNotFound, req.Path)
		return req.Err
	}
	if ino.IsDir {
		req.Err = fmt.Errorf("%w: %q", ErrIsDir, req.Path)
		return req.Err
	}
	if req.Flags&core.FlagExcl != 0 && req.Flags&core.FlagCreate != 0 {
		req.Err = fmt.Errorf("%w: %q", ErrExists, req.Path)
		return req.Err
	}
	if req.Flags&core.FlagTrunc != 0 {
		return f.truncateTo(e, req, ino, 0)
	}
	req.Result = ino.Size
	return nil
}

func (f *LabFS) stat(req *core.Request) error {
	ino, ok := f.table.Get(req.Path)
	if !ok {
		req.Err = fmt.Errorf("%w: %q", ErrNotFound, req.Path)
		return req.Err
	}
	req.Result = ino.Size
	req.Mode = ino.Mode
	if ino.IsDir {
		req.Flags |= 1 << 16 // directory marker for callers
	}
	return nil
}

func (f *LabFS) unlink(e *core.Exec, req *core.Request) error {
	f.chargeMeta(e, req, req.Path)
	ino, ok := f.table.Get(req.Path)
	if !ok {
		req.Err = fmt.Errorf("%w: %q", ErrNotFound, req.Path)
		return req.Err
	}
	if ino.IsDir {
		req.Err = fmt.Errorf("%w: %q", ErrIsDir, req.Path)
		return req.Err
	}
	f.table.Delete(req.Path)
	for _, phys := range ino.Blocks {
		f.alloc.Free(e.WorkerID, phys)
	}
	return f.logAppend(e, req, logEntry{Op: logUnlink, Path: req.Path})
}

func (f *LabFS) rmdir(e *core.Exec, req *core.Request) error {
	f.chargeMeta(e, req, req.Path)
	ino, ok := f.table.Get(req.Path)
	if !ok {
		req.Err = fmt.Errorf("%w: %q", ErrNotFound, req.Path)
		return req.Err
	}
	if !ino.IsDir {
		req.Err = fmt.Errorf("%w: %q", ErrNotDir, req.Path)
		return req.Err
	}
	if len(f.table.List(req.Path)) > 0 {
		req.Err = fmt.Errorf("%w: %q", ErrNotEmpty, req.Path)
		return req.Err
	}
	f.table.Delete(req.Path)
	return f.logAppend(e, req, logEntry{Op: logRmdir, Path: req.Path})
}

func (f *LabFS) rename(e *core.Exec, req *core.Request) error {
	f.chargeMeta(e, req, req.Path)
	// POSIX rename replaces an existing target: reclaim its blocks.
	if victim, ok := f.table.Get(req.Path2); ok {
		if victim.IsDir {
			req.Err = fmt.Errorf("%w: %q", ErrIsDir, req.Path2)
			return req.Err
		}
		for _, phys := range victim.Blocks {
			f.alloc.Free(e.WorkerID, phys)
		}
		f.table.Delete(req.Path2)
		if err := f.logAppend(e, req, logEntry{Op: logUnlink, Path: req.Path2}); err != nil {
			return err
		}
	}
	if err := f.table.Rename(req.Path, req.Path2); err != nil {
		req.Err = fmt.Errorf("%w: %q", ErrNotFound, req.Path)
		return req.Err
	}
	return f.logAppend(e, req, logEntry{Op: logRename, Path: req.Path, Path2: req.Path2})
}

func (f *LabFS) readdir(req *core.Request) error {
	if req.Path != "" && req.Path != "/" {
		ino, ok := f.table.Get(req.Path)
		if !ok {
			req.Err = fmt.Errorf("%w: %q", ErrNotFound, req.Path)
			return req.Err
		}
		if !ino.IsDir {
			req.Err = fmt.Errorf("%w: %q", ErrNotDir, req.Path)
			return req.Err
		}
	}
	req.Names = f.table.List(req.Path)
	req.Result = int64(len(req.Names))
	return nil
}

func (f *LabFS) truncate(e *core.Exec, req *core.Request) error {
	f.chargeMeta(e, req, req.Path)
	ino, ok := f.table.Get(req.Path)
	if !ok {
		req.Err = fmt.Errorf("%w: %q", ErrNotFound, req.Path)
		return req.Err
	}
	return f.truncateTo(e, req, ino, req.Offset)
}

func (f *LabFS) truncateTo(e *core.Exec, req *core.Request, ino *inode, size int64) error {
	bs := int64(f.blockSize)
	limit := (size + bs - 1) / bs
	for idx, phys := range ino.Blocks {
		if idx >= limit {
			f.alloc.Free(e.WorkerID, phys)
			delete(ino.Blocks, idx)
		}
	}
	// Zero the tail of the boundary block: if the file is later extended,
	// the region between the old truncation point and the new data must
	// read as zeros (POSIX), not as stale block content.
	if inBlock := size % bs; inBlock != 0 {
		if phys, ok := ino.Blocks[size/bs]; ok {
			blockBuf := core.AcquireBuf(f.blockSize)
			defer core.ReleaseBuf(blockBuf)
			rc := req.Child(core.OpBlockRead)
			rc.Offset = phys * bs
			rc.Size = f.blockSize
			rc.Data = blockBuf
			err := e.Next(rc)
			rc.Data = nil
			if err != nil {
				return err
			}
			req.Absorb(rc)
			for i := inBlock; i < bs; i++ {
				blockBuf[i] = 0
			}
			wc := req.Child(core.OpBlockWrite)
			wc.Offset = phys * bs
			wc.Size = f.blockSize
			wc.Data = blockBuf
			err = e.Next(wc)
			wc.Data = nil
			if err != nil {
				return err
			}
			req.Absorb(wc)
		}
	}
	ino.Size = size
	return f.logAppend(e, req, logEntry{Op: logTruncate, Path: ino.Path, Size: size})
}

func (f *LabFS) fsync(e *core.Exec, req *core.Request) error {
	// fsync guarantees the named file is durable — if a crash replay
	// dropped it (its create never reached the log), the caller must learn
	// that now rather than receive a hollow success. Close is exempt:
	// closing an unlinked file is legal.
	if req.Op == core.OpFsync && req.Path != "" {
		if _, ok := f.table.Get(req.Path); !ok {
			req.Err = fmt.Errorf("%w: %q", ErrNotFound, req.Path)
			return req.Err
		}
	}
	if err := f.log.Flush(e, req); err != nil {
		return err
	}
	child := req.Child(core.OpBlockFlush)
	return e.SpawnNext(req, child)
}

// --- data ops -----------------------------------------------------------------

func (f *LabFS) write(e *core.Exec, req *core.Request) error {
	f.chargeMeta(e, req, req.Path)
	ino, ok := f.table.Get(req.Path)
	if !ok {
		if req.Flags&core.FlagCreate == 0 {
			req.Err = fmt.Errorf("%w: %q", ErrNotFound, req.Path)
			return req.Err
		}
		if err := f.create(e, req, false); err != nil {
			return err
		}
		ino, _ = f.table.Get(req.Path)
	}
	if ino.IsDir {
		req.Err = fmt.Errorf("%w: %q", ErrIsDir, req.Path)
		return req.Err
	}
	off := req.Offset
	if req.Op == core.OpAppend || req.Flags&core.FlagAppend != 0 {
		off = ino.Size
	}
	data := req.Data
	bs := int64(f.blockSize)

	// Issue the per-block children concurrently in virtual time: each child
	// starts from the parent's current clock (the device's parallelism and
	// queue model provide the real overlap limits), then the parent absorbs
	// the slowest completion.
	base := req.Clock
	written := 0
	for written < len(data) {
		idx := (off + int64(written)) / bs
		inBlock := int((off + int64(written)) % bs)
		n := f.blockSize - inBlock
		if n > len(data)-written {
			n = len(data) - written
		}
		phys, have := ino.Blocks[idx]
		if !have {
			var err error
			phys, err = f.alloc.Alloc(e.WorkerID)
			if err != nil {
				req.Err = err
				return err
			}
			ino.Blocks[idx] = phys
			if err := f.logAppend(e, req, logEntry{Op: logExtent, Path: ino.Path, BlockIdx: idx, Phys: phys}); err != nil {
				return err
			}
			base = req.Clock // log append advanced the parent
		}
		child := req.Child(core.OpBlockWrite)
		child.Clock = base
		child.Offset = phys * bs
		var scratch []byte // arena block to release after the write
		if inBlock == 0 && n == f.blockSize {
			// Full-block write: the payload view flows down unstaged.
			child.Size = f.blockSize
			child.Data = data[written : written+n]
			if req.Buf.Valid() && written+n <= req.Buf.Len() {
				child.Buf = req.Buf.Slice(written, written+n)
			}
		} else {
			// Partial block: read-modify-write through an arena scratch block.
			scratch = core.AcquireBuf(f.blockSize)
			if have {
				rc := req.Child(core.OpBlockRead)
				rc.Clock = base
				rc.Offset = phys * bs
				rc.Size = f.blockSize
				rc.Data = scratch
				err := e.Next(rc)
				rc.Data = nil
				if err != nil {
					core.ReleaseBuf(scratch)
					return err
				}
				child.Clock = rc.Clock
				req.Absorb(rc)
			} else {
				// Fresh block: the unwritten tail must read as zeros, and
				// arena buffers come back dirty.
				for i := range scratch {
					scratch[i] = 0
				}
			}
			copyRMWStage.Add(copy(scratch[inBlock:], data[written:written+n]))
			child.Size = f.blockSize
			child.Data = scratch
		}
		err := e.Next(child)
		child.Data = nil
		child.Buf = core.BufHandle{}
		core.ReleaseBuf(scratch)
		if err != nil {
			return err
		}
		req.Absorb(child)
		written += n
	}
	if end := off + int64(len(data)); end > ino.Size {
		ino.Size = end
		if err := f.logAppend(e, req, logEntry{Op: logSetSize, Path: ino.Path, Size: end}); err != nil {
			return err
		}
	}
	ino.LastWriter = req.Cred.UID
	f.statsMu.Lock()
	f.writes++
	f.statsMu.Unlock()
	req.Result = int64(len(data))
	return nil
}

func (f *LabFS) read(e *core.Exec, req *core.Request) error {
	f.chargeMeta(e, req, req.Path)
	ino, ok := f.table.Get(req.Path)
	if !ok {
		req.Err = fmt.Errorf("%w: %q", ErrNotFound, req.Path)
		return req.Err
	}
	if ino.IsDir {
		req.Err = fmt.Errorf("%w: %q", ErrIsDir, req.Path)
		return req.Err
	}
	if req.Data == nil {
		// Stack-owned arena result: block reads land in it directly and
		// it transfers to the client at completion (TakeValue).
		req.Data = req.CompleteValue(req.Size)
	}
	data := req.Data
	// dstH is the handle behind data, used to cut per-block views for
	// downstream retention: the request's own result handle (stack-owned,
	// caches may retain) or the client's registered buffer (borrowed).
	dstH := req.ValueH
	if !dstH.Valid() {
		dstH = req.Buf
	}
	if int64(len(data)) > 0 && req.Offset >= ino.Size {
		req.Result = 0
		return nil
	}
	want := int64(len(data))
	if req.Offset+want > ino.Size {
		want = ino.Size - req.Offset
	}
	bs := int64(f.blockSize)
	base := req.Clock
	read := int64(0)
	var blockBuf []byte // bounce scratch, lazily acquired for partial blocks
	for read < want {
		idx := (req.Offset + read) / bs
		inBlock := int((req.Offset + read) % bs)
		n := int64(f.blockSize - inBlock)
		if n > want-read {
			n = want - read
		}
		phys, have := ino.Blocks[idx]
		if !have {
			// Hole: zero fill.
			for i := read; i < read+n; i++ {
				data[i] = 0
			}
			read += n
			continue
		}
		child := req.Child(core.OpBlockRead)
		child.Clock = base
		child.Offset = phys * bs
		child.Size = f.blockSize
		direct := inBlock == 0 && n == int64(f.blockSize)
		if direct {
			// Block-aligned span: read straight into the destination.
			child.Data = data[read : read+n]
			if dstH.Valid() && read+n <= int64(dstH.Len()) {
				child.Buf = dstH.Slice(int(read), int(read+n))
			}
		} else {
			if blockBuf == nil {
				blockBuf = core.AcquireBuf(f.blockSize)
			}
			child.Data = blockBuf
		}
		err := e.Next(child)
		child.Data = nil
		child.Buf = core.BufHandle{}
		if err != nil {
			if blockBuf != nil {
				core.ReleaseBuf(blockBuf)
			}
			return err
		}
		req.Absorb(child)
		if !direct {
			copyReadBounce.Add(int(n))
			copy(data[read:read+n], blockBuf[inBlock:inBlock+int(n)])
		}
		read += n
	}
	if blockBuf != nil {
		core.ReleaseBuf(blockBuf)
	}
	f.statsMu.Lock()
	f.reads++
	f.statsMu.Unlock()
	req.Result = read
	return nil
}

// scanExec is the grep-offload path: it runs a registered pushdown
// program over a file's lines without moving the file to the caller.
// Blocks are read through the stack below with no destination buffer (a
// warm cache hands back retained in-place views), lines are split against
// those views, and only matching lines (or a scalar aggregate) are
// emitted. A line spanning a block boundary carries its partial prefix
// forward — the only copy the streaming path makes.
func (f *LabFS) scanExec(e *core.Exec, req *core.Request) error {
	if req.Prog == "" {
		req.Err = fmt.Errorf("labfs: %w: scan needs a program ref", core.ErrNotSupported)
		return req.Err
	}
	prog, ok := pushdown.Default.Lookup(req.Prog)
	if !ok {
		req.Err = fmt.Errorf("%w: %q", pushdown.ErrUnknownProgram, req.Prog)
		return nil
	}
	f.chargeMeta(e, req, req.Path)
	ino, ok := f.table.Get(req.Path)
	if !ok {
		req.Err = fmt.Errorf("%w: %q", ErrNotFound, req.Path)
		return req.Err
	}
	if ino.IsDir {
		req.Err = fmt.Errorf("%w: %q", ErrIsDir, req.Path)
		return req.Err
	}
	ev := pushdown.NewEval(prog, pushdown.EmitRaw, req.ProgMaxBytes, req.ProgMaxSteps)
	bs := int64(f.blockSize)
	base := req.Clock
	var carry []byte
	var trip error
	for off := int64(0); off < ino.Size && trip == nil; off += bs {
		n := bs
		if off+n > ino.Size {
			n = ino.Size - off
		}
		var view []byte
		var h core.BufHandle
		if phys, have := ino.Blocks[off/bs]; have {
			child := req.Child(core.OpBlockRead)
			child.Clock = base
			child.Offset = phys * bs
			child.Size = f.blockSize
			err := e.Next(child)
			req.Absorb(child)
			if err != nil || child.Err != nil {
				if child.ValueH.Valid() {
					child.ValueH.Release()
				}
				if err == nil {
					err = child.Err
				}
				req.Err = err
				return err
			}
			view = child.Value
			if view == nil {
				view = child.Data
			}
			view = view[:n]
			h = child.ValueH
		} else {
			view = make([]byte, n) // hole: zeros
		}
		start := 0
		for start < len(view) {
			nl := bytes.IndexByte(view[start:], '\n')
			if nl < 0 {
				break
			}
			line := view[start : start+nl]
			var err error
			if len(carry) > 0 {
				_, err = ev.Record("", carry, line)
				carry = carry[:0]
			} else {
				_, err = ev.Record("", line)
			}
			if err != nil {
				trip = err
				break
			}
			start += nl + 1
		}
		if trip == nil && start < len(view) {
			pushdown.CopyCarry.Add(len(view) - start)
			carry = append(carry, view[start:]...)
		}
		if h.Valid() {
			h.Release()
		}
	}
	if trip == nil && len(carry) > 0 {
		_, trip = ev.Record("", carry)
	}
	req.Charge("pushdown", e.Model.Pushdown(int(ev.BytesScanned())))
	f.pdStats.Execs.Inc()
	f.pdStats.Records.Add(ev.Records())
	f.pdStats.Bytes.Add(ev.BytesScanned())
	f.pdStats.Matches.Add(ev.Matched())
	f.pdStats.EmitBytes.Add(ev.EmitBytes())
	if trip != nil {
		f.pdStats.BudgetTrips.Inc()
		req.Err = trip
		return nil
	}
	ev.Finish(req)
	return nil
}

// --- lifecycle ----------------------------------------------------------------

// StateUpdate adopts the previous instance's inode table, allocator and log
// (live upgrade without losing the filesystem).
func (f *LabFS) StateUpdate(prev core.Module) error {
	old, ok := prev.(*LabFS)
	if !ok {
		return nil
	}
	f.table = old.table
	f.alloc = old.alloc
	f.log = old.log
	f.blockSize = old.blockSize
	f.logBlocks = old.logBlocks
	f.dataFirst = old.dataFirst
	f.dataBlocks = old.dataBlocks
	f.needReplay = false
	return nil
}

// StateRepair schedules a log replay: after a Runtime crash the in-memory
// inode table may be stale, so it is rebuilt from the on-device log on the
// next request.
func (f *LabFS) StateRepair() error {
	f.replayMu.Lock()
	f.needReplay = true
	f.replayMu.Unlock()
	return nil
}

// EstProcessingTime classifies LabFS requests as latency-sensitive
// (metadata + per-block bookkeeping).
func (f *LabFS) EstProcessingTime(op core.Op, size int) vtime.Duration {
	m := f.Env.Model
	if op.IsMetadata() {
		return m.FSMetadata + m.LabFSCreate
	}
	blocks := vtime.Duration(size/f.blockSize + 1)
	return m.FSMetadata + blocks*m.LabFSShardLockHold
}

// Provenance returns a file's provenance record (creator UID, creating log
// sequence, last writer UID) — LabFS's provenance tracking (paper §III-E).
func (f *LabFS) Provenance(path string) (createdBy int, createdSeq uint64, lastWriter int, ok bool) {
	ino, ok := f.table.Get(path)
	if !ok {
		return 0, 0, 0, false
	}
	return ino.CreatedBy, ino.CreatedSeq, ino.LastWriter, true
}

// Stats returns op counters.
func (f *LabFS) Stats() (creates, writes, reads int64) {
	f.statsMu.Lock()
	defer f.statsMu.Unlock()
	return f.creates, f.writes, f.reads
}
