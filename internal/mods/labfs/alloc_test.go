package labfs

import (
	"testing"
	"testing/quick"
)

func TestAllocatorDivision(t *testing.T) {
	a := newAllocator(4, 100, 1000)
	if a.Pools() != 4 {
		t.Fatal("pools")
	}
	if a.FreeBlocks() != 1000 {
		t.Fatalf("free %d", a.FreeBlocks())
	}
	sizes := a.PoolSizes()
	for _, s := range sizes {
		if s != 250 {
			t.Fatalf("uneven division %v", sizes)
		}
	}
}

func TestAllocatorNoDoubleAllocation(t *testing.T) {
	a := newAllocator(3, 0, 300)
	seen := make(map[int64]bool)
	for i := 0; i < 300; i++ {
		blk, err := a.Alloc(i % 3)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if seen[blk] {
			t.Fatalf("block %d allocated twice", blk)
		}
		if blk < 0 || blk >= 300 {
			t.Fatalf("block %d out of range", blk)
		}
		seen[blk] = true
	}
	if _, err := a.Alloc(0); err != ErrNoSpace {
		t.Fatalf("expected ErrNoSpace, got %v", err)
	}
}

func TestAllocatorStealing(t *testing.T) {
	a := newAllocator(2, 0, 100)
	// Drain pool 0 completely.
	for i := 0; i < 50; i++ {
		if _, err := a.Alloc(0); err != nil {
			t.Fatal(err)
		}
	}
	// Next allocation for worker 0 steals from pool 1.
	if _, err := a.Alloc(0); err != nil {
		t.Fatalf("stealing failed: %v", err)
	}
	sizes := a.PoolSizes()
	if sizes[0] == 0 {
		t.Fatalf("no blocks stolen: %v", sizes)
	}
	if sizes[1] != 25 {
		t.Fatalf("victim kept %d, want 25 (half)", sizes[1])
	}
}

func TestAllocatorFreeReturns(t *testing.T) {
	a := newAllocator(1, 0, 10)
	blk, _ := a.Alloc(0)
	a.Free(0, blk)
	if a.FreeBlocks() != 10 {
		t.Fatal("free did not return block")
	}
}

func TestAllocatorPoolScaling(t *testing.T) {
	a := newAllocator(2, 0, 100)
	a.AddPools(4)
	if a.Pools() != 4 {
		t.Fatal("AddPools")
	}
	// New pools start empty and fill by stealing.
	if _, err := a.Alloc(3); err != nil {
		t.Fatalf("new pool cannot steal: %v", err)
	}
	// Decommission pool 0: its blocks redistribute.
	before := a.FreeBlocks()
	a.RemovePool(0)
	if a.Pools() != 3 || a.FreeBlocks() != before {
		t.Fatalf("RemovePool lost blocks: %d -> %d", before, a.FreeBlocks())
	}
	// Removing the last pool is refused.
	b := newAllocator(1, 0, 10)
	b.RemovePool(0)
	if b.Pools() != 1 {
		t.Fatal("last pool removed")
	}
}

func TestAllocatorMarkUsed(t *testing.T) {
	a := newAllocator(2, 0, 10)
	a.MarkUsed(5)
	if a.FreeBlocks() != 9 {
		t.Fatal("MarkUsed")
	}
	for i := 0; i < 9; i++ {
		blk, err := a.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		if blk == 5 {
			t.Fatal("marked block handed out")
		}
	}
}

func TestAllocatorQuickConservation(t *testing.T) {
	// Property: alloc/free sequences never lose or duplicate blocks.
	f := func(ops []uint8) bool {
		a := newAllocator(3, 0, 60)
		held := map[int64]bool{}
		for _, op := range ops {
			w := int(op) % 3
			if op%2 == 0 {
				blk, err := a.Alloc(w)
				if err != nil {
					continue
				}
				if held[blk] {
					return false // double allocation
				}
				held[blk] = true
			} else {
				for blk := range held {
					a.Free(w, blk)
					delete(held, blk)
					break
				}
			}
		}
		return a.FreeBlocks()+int64(len(held)) == 60
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInodeTableShardingAndList(t *testing.T) {
	tab := newInodeTable(8)
	for _, p := range []string{"a/x", "a/y", "a/sub/z", "b/q"} {
		tab.Put(&inode{Path: p, Blocks: map[int64]int64{}})
	}
	if tab.Count() != 4 {
		t.Fatal("count")
	}
	ls := tab.List("a")
	if len(ls) != 3 || ls[0] != "sub" || ls[1] != "x" {
		t.Fatalf("list %v", ls)
	}
	if _, created := tab.Create(&inode{Path: "a/x"}); created {
		t.Fatal("duplicate create")
	}
	if err := tab.Rename("a/x", "b/x"); err != nil {
		t.Fatal(err)
	}
	if _, ok := tab.Get("a/x"); ok {
		t.Fatal("rename left source")
	}
	if _, ok := tab.Get("b/x"); !ok {
		t.Fatal("rename lost target")
	}
	if err := tab.Rename("ghost", "z"); err == nil {
		t.Fatal("rename of missing succeeded")
	}
	tab.Clear()
	if tab.Count() != 0 {
		t.Fatal("clear")
	}
}

func TestInodeTableForEach(t *testing.T) {
	tab := newInodeTable(4)
	for i := 0; i < 10; i++ {
		tab.Put(&inode{Path: string(rune('a' + i))})
	}
	n := 0
	tab.ForEach(func(*inode) { n++ })
	if n != 10 {
		t.Fatalf("foreach %d", n)
	}
}
