package labfs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"labstor/internal/core"
	"labstor/internal/device"
)

func codecCases() []logEntry {
	return []logEntry{
		{Seq: 1, Op: logCreate, Path: "a/b/c.txt", Mode: 0644, UID: 1000, GID: 1000},
		{Seq: 2, Op: logMkdir, Path: "dir", Mode: 0755},
		{Seq: 3, Op: logUnlink, Path: "a/b/c.txt"},
		{Seq: 4, Op: logRmdir, Path: "dir"},
		{Seq: 5, Op: logRename, Path: "old name with spaces", Path2: "новое/имя"},
		{Seq: 6, Op: logTruncate, Path: "f", Size: 1 << 40},
		{Seq: 7, Op: logExtent, Path: "f", BlockIdx: 9_999_999, Phys: 123_456_789},
		{Seq: 8, Op: logSetSize, Path: "f", Size: 0},
		{Seq: 300, Op: logCreate, Path: "", Mode: 0, UID: -1, GID: -7}, // negative ids zigzag-encode
		{Seq: 1 << 60, Op: logExtent, Path: "x", BlockIdx: -5, Phys: -9, Size: -1},
	}
}

func TestBinaryRecordRoundTrip(t *testing.T) {
	var packed []byte
	for _, ent := range codecCases() {
		rec := appendRecord(nil, &ent)
		got, n, st := decodeRecord(rec)
		if st != recMore || n != len(rec) {
			t.Fatalf("decode %+v: status=%v n=%d len=%d", ent, st, n, len(rec))
		}
		if !reflect.DeepEqual(got, ent) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", ent, got)
		}
		packed = appendRecord(packed, &ent)
	}
	// Sequential decode of a packed block with zero padding at the end.
	packed = append(packed, make([]byte, 64)...)
	var out []logEntry
	for off := 0; off < len(packed); {
		ent, n, st := decodeRecord(packed[off:])
		if st == recEnd {
			break
		}
		if st == recTorn {
			t.Fatalf("unexpected torn record at offset %d", off)
		}
		out = append(out, ent)
		off += n
	}
	if !reflect.DeepEqual(out, codecCases()) {
		t.Fatalf("packed decode mismatch: %+v", out)
	}
}

func TestBinaryRecordTornDetection(t *testing.T) {
	ent := logEntry{Seq: 42, Op: logCreate, Path: "torn-path", Mode: 0600}
	rec := appendRecord(nil, &ent)

	flip := func(i int) []byte {
		cp := append([]byte(nil), rec...)
		cp[i] ^= 0xFF
		return cp
	}
	if _, _, st := decodeRecord(flip(0)); st != recTorn {
		t.Fatal("bad magic not detected")
	}
	if _, _, st := decodeRecord(flip(recHeader + 3)); st != recTorn {
		t.Fatal("payload corruption not detected by CRC")
	}
	if _, _, st := decodeRecord(rec[:len(rec)-2]); st != recTorn {
		t.Fatal("truncated frame not detected")
	}
	if _, _, st := decodeRecord(make([]byte, 32)); st != recEnd {
		t.Fatal("zero padding must read as clean end")
	}
	if got, n, st := decodeRecord(rec); st != recMore || n != len(rec) || got.Seq != 42 {
		t.Fatal("control: pristine record must decode")
	}
}

// jsonLogEntry mirrors the retired JSON-lines on-device format so the
// equivalence test can replay a log written the old way.
type jsonLogEntry struct {
	Seq      uint64 `json:"s"`
	Op       string `json:"o"`
	Path     string `json:"p,omitempty"`
	Path2    string `json:"q,omitempty"`
	Mode     uint32 `json:"m,omitempty"`
	UID      int    `json:"u,omitempty"`
	GID      int    `json:"g,omitempty"`
	BlockIdx int64  `json:"b,omitempty"`
	Phys     int64  `json:"f,omitempty"`
	Size     int64  `json:"z,omitempty"`
}

// jsonPackAndReplay runs entries through the old format's exact pack
// (JSON line per entry, blocks flushed when full, zero padding) and replay
// (split lines, trim NULs, stop at first unparsable line) algorithms.
func jsonPackAndReplay(entries []logEntry, blockSize int) []logEntry {
	var blocks [][]byte
	var buf []byte
	for _, ent := range entries {
		line, _ := json.Marshal(jsonLogEntry(ent))
		line = append(line, '\n')
		if len(buf)+len(line) > blockSize {
			blk := make([]byte, blockSize)
			copy(blk, buf)
			blocks = append(blocks, blk)
			buf = nil
		}
		buf = append(buf, line...)
	}
	blk := make([]byte, blockSize)
	copy(blk, buf)
	blocks = append(blocks, blk)

	var out []logEntry
	for _, data := range blocks {
		if data[0] == 0 {
			break
		}
		for _, line := range bytes.Split(data, []byte{'\n'}) {
			line = bytes.TrimRight(line, "\x00")
			if len(line) == 0 {
				continue
			}
			var ent jsonLogEntry
			if err := json.Unmarshal(line, &ent); err != nil {
				return out
			}
			out = append(out, logEntry(ent))
		}
	}
	return out
}

// TestBinaryReplayEquivalentToJSON proves the format switch preserved
// replay semantics: the same logical append sequence recovers the same
// entries through the binary pipeline (metaLog on a device) as through the
// retired JSON pack/replay algorithm.
func TestBinaryReplayEquivalentToJSON(t *testing.T) {
	var logical []logEntry
	for i := 0; i < 40; i++ {
		for _, ent := range codecCases() {
			ent.Seq = 0 // Append assigns
			logical = append(logical, ent)
		}
	}

	dev := device.New("eq", device.NVMe, 16<<20)
	l := newMetaLog(4096, 256)
	driveLog(t, dev, func(e *core.Exec, req *core.Request) error {
		for _, ent := range logical {
			if err := l.Append(e, req, ent); err != nil {
				return err
			}
		}
		return l.Flush(e, req)
	})
	var viaBinary []logEntry
	driveLog(t, dev, func(e *core.Exec, req *core.Request) error {
		var err error
		viaBinary, err = newMetaLog(4096, 256).Replay(e, req)
		return err
	})

	withSeq := make([]logEntry, len(logical))
	for i, ent := range logical {
		ent.Seq = uint64(i + 1)
		withSeq[i] = ent
	}
	viaJSON := jsonPackAndReplay(withSeq, 4096)

	if !reflect.DeepEqual(viaBinary, viaJSON) {
		t.Fatalf("replay mismatch: binary %d entries, json %d entries", len(viaBinary), len(viaJSON))
	}
}

// TestBinaryCrashReplayPrefix tears the log mid-record and checks replay
// recovers exactly the records before the tear — the same prefix semantics
// the JSON format's per-line parse gave.
func TestBinaryCrashReplayPrefix(t *testing.T) {
	dev := device.New("crash", device.NVMe, 1<<20)
	l := newMetaLog(4096, 16)
	ent := logEntry{Op: logCreate, Path: "prefix-entry", Mode: 0644}
	rec := appendRecord(nil, &logEntry{Seq: 1, Op: ent.Op, Path: ent.Path, Mode: ent.Mode})
	driveLog(t, dev, func(e *core.Exec, req *core.Request) error {
		for i := 0; i < 12; i++ {
			if err := l.Append(e, req, ent); err != nil {
				return err
			}
		}
		return l.Flush(e, req)
	})
	// Zero the tail of the block starting inside record 8 (records 0-based;
	// record sizes are constant here because seq 1..12 all fit one varint
	// byte): everything from the middle of that record on reads as a torn
	// write.
	tear := int64(7*len(rec) + len(rec)/2)
	zeros := make([]byte, 4096-int(tear))
	if _, err := dev.WriteAt(zeros, tear); err != nil {
		t.Fatal(err)
	}
	var entries []logEntry
	driveLog(t, dev, func(e *core.Exec, req *core.Request) error {
		var err error
		entries, err = newMetaLog(4096, 16).Replay(e, req)
		return err
	})
	if len(entries) != 7 {
		t.Fatalf("crash replay recovered %d entries, want the 7 before the tear", len(entries))
	}
	for i, got := range entries {
		if got.Seq != uint64(i+1) || got.Path != ent.Path {
			t.Fatalf("entry %d corrupted: %+v", i, got)
		}
	}
}
