package labfs

import (
	"encoding/binary"
	"hash/crc32"
)

// Binary metadata log record format. Each record is framed as
//
//	[magic 0xA7][payload length, 4B LE][payload CRC32 (IEEE), 4B LE][payload]
//
// and the payload is a fixed sequence of varint fields:
//
//	seq (uvarint) · op code (1 byte) · path (uvarint len + bytes) ·
//	path2 (uvarint len + bytes) · mode (uvarint) · uid (varint) ·
//	gid (varint) · block_idx (varint) · phys (varint) · size (varint)
//
// Replay semantics mirror the old JSON-lines format exactly: a block whose
// first byte is zero holds no entries (zero padding never begins a record
// because the magic byte is nonzero); within a block, a zero byte where a
// record should start is the padding terminator; a failed magic, short
// frame, CRC mismatch, unknown op code or malformed varint is a torn tail
// and stops the scan. The per-record CRC is what makes torn (partially
// persisted) records detectable now that entries are no longer
// self-describing text lines.
const (
	recMagic  = 0xA7
	recHeader = 9 // magic + length + crc
)

// Op kinds map to single-byte codes on the device; the string constants in
// log.go stay the in-memory representation so replay logic and tests are
// untouched.
var opToCode = map[string]byte{
	logCreate:   1,
	logMkdir:    2,
	logUnlink:   3,
	logRmdir:    4,
	logRename:   5,
	logTruncate: 6,
	logExtent:   7,
	logSetSize:  8,
}

var codeToOp = func() map[byte]string {
	m := make(map[byte]string, len(opToCode))
	for s, c := range opToCode {
		m[c] = s
	}
	return m
}()

// appendRecord encodes ent as one framed record appended to dst and returns
// the extended slice. Unknown op kinds encode as code 0 and are rejected at
// decode — they cannot occur through the Append API.
func appendRecord(dst []byte, ent *logEntry) []byte {
	start := len(dst)
	// Reserve the frame header; the payload is encoded in place after it.
	dst = append(dst, recMagic, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = binary.AppendUvarint(dst, ent.Seq)
	dst = append(dst, opToCode[ent.Op])
	dst = binary.AppendUvarint(dst, uint64(len(ent.Path)))
	dst = append(dst, ent.Path...)
	dst = binary.AppendUvarint(dst, uint64(len(ent.Path2)))
	dst = append(dst, ent.Path2...)
	dst = binary.AppendUvarint(dst, uint64(ent.Mode))
	dst = binary.AppendVarint(dst, int64(ent.UID))
	dst = binary.AppendVarint(dst, int64(ent.GID))
	dst = binary.AppendVarint(dst, ent.BlockIdx)
	dst = binary.AppendVarint(dst, ent.Phys)
	dst = binary.AppendVarint(dst, ent.Size)
	payload := dst[start+recHeader:]
	binary.LittleEndian.PutUint32(dst[start+1:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+5:], crc32.ChecksumIEEE(payload))
	return dst
}

// decodeRecord decodes the record at the start of b. It returns the entry,
// the number of bytes consumed, and what the scan should do next: recMore
// (entry valid, keep scanning), recEnd (zero padding — clean end of the
// block's records) or recTorn (corruption — stop replay here).
type recStatus int

const (
	recMore recStatus = iota
	recEnd
	recTorn
)

func decodeRecord(b []byte) (ent logEntry, n int, st recStatus) {
	if len(b) == 0 || b[0] == 0 {
		return ent, 0, recEnd
	}
	if b[0] != recMagic || len(b) < recHeader {
		return ent, 0, recTorn
	}
	plen := int(binary.LittleEndian.Uint32(b[1:5]))
	if plen <= 0 || recHeader+plen > len(b) {
		return ent, 0, recTorn
	}
	payload := b[recHeader : recHeader+plen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[5:recHeader]) {
		return ent, 0, recTorn
	}
	d := varintDecoder{b: payload}
	ent.Seq = d.uvarint()
	op, okOp := codeToOp[d.byte()]
	ent.Op = op
	ent.Path = d.str()
	ent.Path2 = d.str()
	ent.Mode = uint32(d.uvarint())
	ent.UID = int(d.varint())
	ent.GID = int(d.varint())
	ent.BlockIdx = d.varint()
	ent.Phys = d.varint()
	ent.Size = d.varint()
	if d.bad || !okOp || d.off != len(payload) {
		// A checksummed payload that fails structural decode means a codec
		// mismatch, not a torn write, but the safe recovery action is the
		// same: stop at the last good record.
		return logEntry{}, 0, recTorn
	}
	return ent, recHeader + plen, recMore
}

// varintDecoder walks a payload's fixed field sequence, latching any
// malformation into bad instead of returning errors field-by-field.
type varintDecoder struct {
	b   []byte
	off int
	bad bool
}

func (d *varintDecoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.off += n
	return v
}

func (d *varintDecoder) varint() int64 {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.off += n
	return v
}

func (d *varintDecoder) byte() byte {
	if d.off >= len(d.b) {
		d.bad = true
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *varintDecoder) str() string {
	ln := d.uvarint()
	if d.bad || ln > uint64(len(d.b)-d.off) {
		d.bad = true
		return ""
	}
	s := string(d.b[d.off : d.off+int(ln)])
	d.off += int(ln)
	return s
}
