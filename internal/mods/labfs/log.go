package labfs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"

	"labstor/internal/core"
)

// Log op kinds.
const (
	logCreate   = "create"
	logMkdir    = "mkdir"
	logUnlink   = "unlink"
	logRmdir    = "rmdir"
	logRename   = "rename"
	logTruncate = "truncate"
	logExtent   = "extent"
	logSetSize  = "setsize"
)

// logEntry is one record of LabFS's per-worker metadata log. LabFS stores
// only the log on the device and reconstructs all inodes in memory by
// traversing it (paper §III-E). Entries are JSON lines packed into log
// blocks — self-describing and crash-parseable.
type logEntry struct {
	Seq   uint64 `json:"s"`
	Op    string `json:"o"`
	Path  string `json:"p,omitempty"`
	Path2 string `json:"q,omitempty"`
	Mode  uint32 `json:"m,omitempty"`
	UID   int    `json:"u,omitempty"`
	GID   int    `json:"g,omitempty"`
	// Extent fields: file block index -> physical block.
	BlockIdx int64 `json:"b,omitempty"`
	Phys     int64 `json:"f,omitempty"`
	Size     int64 `json:"z,omitempty"`
}

// metaLog buffers metadata log entries and persists them into the log
// region of the device via downstream block writes.
type metaLog struct {
	mu        sync.Mutex
	blockSize int
	logBlocks int64 // log region: blocks [0, logBlocks)
	head      int64 // next log block to fill
	buf       []byte
	seq       uint64
	dirty     bool
}

func newMetaLog(blockSize int, logBlocks int64) *metaLog {
	return &metaLog{blockSize: blockSize, logBlocks: logBlocks}
}

// Append records an entry in the buffer, flushing full blocks downstream.
// The device write happens under the log mutex: a concurrent Flush or
// Append must not write an older view of a block over a newer one.
func (l *metaLog) Append(e *core.Exec, parent *core.Request, ent logEntry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	ent.Seq = l.seq
	line, err := json.Marshal(ent)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if len(line) >= l.blockSize {
		return fmt.Errorf("labfs: log entry exceeds block size (%d bytes)", len(line))
	}
	if len(l.buf)+len(line) > l.blockSize {
		// Current block is full: persist it and advance the head.
		full := pad(l.buf, l.blockSize)
		fullAt := l.head
		l.head++
		l.buf = nil
		if err := l.writeBlock(e, parent, fullAt, full); err != nil {
			return err
		}
	}
	l.buf = append(l.buf, line...)
	l.dirty = true
	if l.head >= l.logBlocks {
		return fmt.Errorf("labfs: metadata log region full (%d blocks); checkpoint required", l.logBlocks)
	}
	return nil
}

// Flush persists the current partial block (fsync / close / unmount path).
func (l *metaLog) Flush(e *core.Exec, parent *core.Request) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.dirty {
		return nil
	}
	blk := pad(l.buf, l.blockSize)
	at := l.head
	if err := l.writeBlock(e, parent, at, blk); err != nil {
		return err
	}
	l.dirty = false
	return nil
}

func (l *metaLog) writeBlock(e *core.Exec, parent *core.Request, blockNo int64, data []byte) error {
	child := parent.Child(core.OpBlockWrite)
	child.Offset = blockNo * int64(l.blockSize)
	child.Size = len(data)
	child.Data = data
	return e.SpawnNext(parent, child)
}

// Reset clears the log state (before checkpoint or replay).
func (l *metaLog) Reset() {
	l.mu.Lock()
	l.head = 0
	l.buf = nil
	l.dirty = false
	l.mu.Unlock()
}

// Entries returns the current sequence counter.
func (l *metaLog) Entries() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Replay reads the log region downstream and returns the decoded entries in
// order. The scan stops at the first block that holds no entries.
func (l *metaLog) Replay(e *core.Exec, parent *core.Request) ([]logEntry, error) {
	var entries []logEntry
	var lastUsed int64 = -1
	for b := int64(0); b < l.logBlocks; b++ {
		child := parent.Child(core.OpBlockRead)
		child.Offset = b * int64(l.blockSize)
		child.Size = l.blockSize
		child.Data = make([]byte, l.blockSize)
		if err := e.SpawnNext(parent, child); err != nil {
			return nil, err
		}
		data := child.Data
		if len(data) == 0 || data[0] == 0 {
			break
		}
		lastUsed = b
		for _, line := range bytes.Split(data, []byte{'\n'}) {
			line = bytes.TrimRight(line, "\x00")
			if len(line) == 0 {
				continue
			}
			var ent logEntry
			if err := json.Unmarshal(line, &ent); err != nil {
				// Torn tail of the last block: stop at the first corrupt
				// line (crash-consistency: entries are atomic lines).
				return entries, nil
			}
			entries = append(entries, ent)
		}
	}
	// Resume appending after the last used block.
	l.mu.Lock()
	l.head = lastUsed + 1
	l.buf = nil
	l.dirty = false
	if n := uint64(len(entries)); n > l.seq {
		l.seq = n
	}
	for _, ent := range entries {
		if ent.Seq > l.seq {
			l.seq = ent.Seq
		}
	}
	l.mu.Unlock()
	return entries, nil
}

func pad(b []byte, size int) []byte {
	out := make([]byte, size)
	copy(out, b)
	return out
}
