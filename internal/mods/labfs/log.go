package labfs

import (
	"fmt"
	"sync"
	"sync/atomic"

	"labstor/internal/core"
)

// Log op kinds.
const (
	logCreate   = "create"
	logMkdir    = "mkdir"
	logUnlink   = "unlink"
	logRmdir    = "rmdir"
	logRename   = "rename"
	logTruncate = "truncate"
	logExtent   = "extent"
	logSetSize  = "setsize"
)

// logEntry is one record of LabFS's per-worker metadata log. LabFS stores
// only the log on the device and reconstructs all inodes in memory by
// traversing it (paper §III-E). Entries are packed into log blocks as
// length-prefixed, CRC-framed binary records (codec.go) — compact and
// crash-parseable: replay stops at the first torn record.
type logEntry struct {
	Seq   uint64
	Op    string
	Path  string
	Path2 string
	Mode  uint32
	UID   int
	GID   int
	// Extent fields: file block index -> physical block.
	BlockIdx int64
	Phys     int64
	Size     int64
}

// metaLog buffers metadata log entries and persists them into the log
// region of the device via downstream block writes.
//
// Locking: mu guards only the in-memory buffer state (head/buf/dirty) and
// is never held across encoding or downstream device writes — encoding
// happens before mu is taken, and block writes happen after it is dropped,
// so concurrent appenders serialize only on the buffer splice. Write
// ordering is preserved by per-block versions: every detached block image
// gets a version under mu, and wmu serializes the actual device writes,
// dropping any image older than one already persisted for the same block
// (a stale partial-block Flush must never overwrite a newer fuller image).
type metaLog struct {
	blockSize int
	logBlocks int64 // log region: blocks [0, logBlocks)
	seq       atomic.Uint64

	mu    sync.Mutex
	head  int64 // next log block to fill
	buf   []byte
	dirty bool
	wver  uint64 // version source for detached block images

	wmu     sync.Mutex       // serializes downstream block writes
	written map[int64]uint64 // block -> newest version persisted
}

func newMetaLog(blockSize int, logBlocks int64) *metaLog {
	return &metaLog{blockSize: blockSize, logBlocks: logBlocks, written: make(map[int64]uint64)}
}

// Append records an entry in the buffer, flushing full blocks downstream.
// The record is encoded before the log mutex is taken and the device write
// happens after it is released, so two workers appending concurrently
// serialize only on the buffer splice, not on the encode or the I/O.
func (l *metaLog) Append(e *core.Exec, parent *core.Request, ent logEntry) error {
	ent.Seq = l.seq.Add(1)
	rec := appendRecord(nil, &ent)
	if len(rec) >= l.blockSize {
		return fmt.Errorf("labfs: log entry exceeds block size (%d bytes)", len(rec))
	}

	var full []byte
	var fullAt int64
	var fullVer uint64
	l.mu.Lock()
	if len(l.buf)+len(rec) > l.blockSize {
		// Current block is full: detach a padded image and advance the head;
		// the write itself happens outside the lock.
		full = padBlock(l.buf, l.blockSize)
		fullAt = l.head
		l.wver++
		fullVer = l.wver
		l.head++
		l.buf = l.buf[:0]
	}
	l.buf = append(l.buf, rec...)
	l.dirty = true
	overflow := l.head >= l.logBlocks
	l.mu.Unlock()

	if full != nil {
		if err := l.writeVersioned(e, parent, fullAt, fullVer, full); err != nil {
			return err
		}
	}
	if overflow {
		return fmt.Errorf("labfs: metadata log region full (%d blocks); checkpoint required", l.logBlocks)
	}
	return nil
}

// Flush persists the current partial block (fsync / close / unmount path).
func (l *metaLog) Flush(e *core.Exec, parent *core.Request) error {
	l.mu.Lock()
	if !l.dirty {
		l.mu.Unlock()
		return nil
	}
	blk := padBlock(l.buf, l.blockSize)
	at := l.head
	l.wver++
	ver := l.wver
	l.dirty = false
	l.mu.Unlock()

	if err := l.writeVersioned(e, parent, at, ver, blk); err != nil {
		l.mu.Lock()
		l.dirty = true
		l.mu.Unlock()
		return err
	}
	return nil
}

// writeVersioned pushes a detached block image downstream unless a newer
// image of the same block has already been persisted. The image buffer is
// returned to the payload arena either way.
func (l *metaLog) writeVersioned(e *core.Exec, parent *core.Request, blockNo int64, ver uint64, data []byte) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if v, ok := l.written[blockNo]; ok && v >= ver {
		core.ReleaseBuf(data)
		return nil
	}
	err := l.writeBlock(e, parent, blockNo, data)
	if err == nil {
		l.written[blockNo] = ver
	}
	core.ReleaseBuf(data)
	return err
}

func (l *metaLog) writeBlock(e *core.Exec, parent *core.Request, blockNo int64, data []byte) error {
	child := parent.Child(core.OpBlockWrite)
	child.Offset = blockNo * int64(l.blockSize)
	child.Size = len(data)
	child.Data = data
	err := e.SpawnNext(parent, child)
	child.Data = nil // data goes back to the arena; drop the alias
	return err
}

// Reset clears the log state (before checkpoint or replay).
func (l *metaLog) Reset() {
	l.mu.Lock()
	l.wmu.Lock()
	l.head = 0
	l.buf = nil
	l.dirty = false
	l.written = make(map[int64]uint64)
	l.wmu.Unlock()
	l.mu.Unlock()
}

// Entries returns the current sequence counter.
func (l *metaLog) Entries() uint64 { return l.seq.Load() }

// Replay reads the log region downstream and returns the decoded entries in
// order. The scan stops at the first block that holds no entries; within a
// block it stops at the zero-padding terminator or — for the torn tail of a
// crashed log — at the first record whose frame or checksum is invalid.
func (l *metaLog) Replay(e *core.Exec, parent *core.Request) ([]logEntry, error) {
	var entries []logEntry
	var lastUsed int64 = -1
	blockBuf := core.AcquireBuf(l.blockSize)
	defer core.ReleaseBuf(blockBuf)
	for b := int64(0); b < l.logBlocks; b++ {
		child := parent.Child(core.OpBlockRead)
		child.Offset = b * int64(l.blockSize)
		child.Size = l.blockSize
		child.Data = blockBuf
		err := e.SpawnNext(parent, child)
		child.Data = nil
		if err != nil {
			return nil, err
		}
		data := blockBuf
		if len(data) == 0 || data[0] == 0 {
			break
		}
		lastUsed = b
		for off := 0; off < len(data); {
			ent, n, st := decodeRecord(data[off:])
			if st == recEnd {
				break
			}
			if st == recTorn {
				// Torn tail of the last block: stop at the first corrupt
				// record (crash-consistency: records are atomic frames).
				return entries, nil
			}
			entries = append(entries, ent)
			off += n
		}
	}
	// Resume appending after the last used block.
	l.mu.Lock()
	l.head = lastUsed + 1
	l.buf = nil
	l.dirty = false
	l.mu.Unlock()
	seq := uint64(len(entries))
	for _, ent := range entries {
		if ent.Seq > seq {
			seq = ent.Seq
		}
	}
	if seq > l.seq.Load() {
		l.seq.Store(seq)
	}
	return entries, nil
}

// padBlock copies b into a zero-padded arena buffer of the given size.
// Zeroing the tail matters: the padding terminator is what Replay uses to
// find the end of a block's records, and arena buffers come back dirty.
func padBlock(b []byte, size int) []byte {
	out := core.AcquireBuf(size)
	n := copy(out, b)
	copyLogPad.Add(n)
	tail := out[n:]
	for i := range tail {
		tail[i] = 0
	}
	return out
}
