package labfs

import (
	"testing"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/vtime"
)

// sinkMod is a terminal block module writing straight to a device (log
// tests need a downstream without pulling in the driver package, which
// would create an import cycle in white-box tests).
type sinkMod struct {
	core.Base
	dev *device.Device
}

func (s *sinkMod) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: "test.sink", Consumes: core.APIBlock, Produces: core.APIDriver}
}

func (s *sinkMod) Process(e *core.Exec, req *core.Request) error {
	switch req.Op {
	case core.OpBlockWrite:
		_, err := s.dev.WriteAt(req.Data, req.Offset)
		return err
	case core.OpBlockRead:
		_, err := s.dev.ReadAt(req.Data, req.Offset)
		return err
	}
	return nil
}

func (s *sinkMod) EstProcessingTime(core.Op, int) vtime.Duration { return 0 }

// headMod invokes a test callback with the module's executor context — the
// position LabFS itself occupies when it drives its metadata log.
type headMod struct {
	core.Base
	fn func(e *core.Exec, req *core.Request) error
}

func (h *headMod) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: "test.head", Consumes: core.APIAny, Produces: core.APIBlock}
}

func (h *headMod) Process(e *core.Exec, req *core.Request) error { return h.fn(e, req) }

func (h *headMod) EstProcessingTime(core.Op, int) vtime.Duration { return 0 }

// driveLog runs fn in a module context above a device-backed sink.
func driveLog(t *testing.T, dev *device.Device, fn func(e *core.Exec, req *core.Request) error) {
	t.Helper()
	reg := core.NewRegistry()
	reg.Register("head", &headMod{fn: fn})
	reg.Register("sink", &sinkMod{dev: dev})
	st := core.NewStack("m", core.Rules{}, []core.Vertex{
		{UUID: "head", Outputs: []string{"sink"}},
		{UUID: "sink"},
	})
	e := core.NewExec(reg, nil, nil, 0)
	req := core.NewRequest(core.OpNop)
	if err := e.Submit(st, req); err != nil {
		t.Fatal(err)
	}
	if req.Err != nil {
		t.Fatal(req.Err)
	}
}

func TestMetaLogAppendFlushReplay(t *testing.T) {
	dev := device.New("d", device.NVMe, 16<<20)
	l := newMetaLog(4096, 64)
	driveLog(t, dev, func(e *core.Exec, req *core.Request) error {
		for i := 0; i < 300; i++ {
			if err := l.Append(e, req, logEntry{Op: logCreate, Path: "f", Mode: 0644}); err != nil {
				return err
			}
		}
		return l.Flush(e, req)
	})
	if l.Entries() != 300 {
		t.Fatalf("seq %d", l.Entries())
	}

	// Replay from the same device recovers every entry in order.
	l2 := newMetaLog(4096, 64)
	var entries []logEntry
	driveLog(t, dev, func(e *core.Exec, req *core.Request) error {
		var err error
		entries, err = l2.Replay(e, req)
		return err
	})
	if len(entries) != 300 {
		t.Fatalf("replayed %d entries", len(entries))
	}
	for i, ent := range entries {
		if ent.Seq != uint64(i+1) || ent.Op != logCreate {
			t.Fatalf("entry %d: %+v", i, ent)
		}
	}
	// Appends resume with increasing sequence numbers.
	driveLog(t, dev, func(e *core.Exec, req *core.Request) error {
		return l2.Append(e, req, logEntry{Op: logUnlink, Path: "f"})
	})
	if l2.Entries() != 301 {
		t.Fatalf("resumed seq %d", l2.Entries())
	}
}

func TestMetaLogOverflowDetected(t *testing.T) {
	dev := device.New("d", device.NVMe, 16<<20)
	l := newMetaLog(4096, 2) // two-block log
	failed := false
	driveLog(t, dev, func(e *core.Exec, req *core.Request) error {
		for i := 0; i < 500; i++ {
			if err := l.Append(e, req, logEntry{Op: logCreate, Path: "some/long/path/name"}); err != nil {
				failed = true
				return nil
			}
		}
		return nil
	})
	if !failed {
		t.Fatal("log overflow undetected")
	}
}

func TestMetaLogOversizedEntryRejected(t *testing.T) {
	dev := device.New("d", device.NVMe, 16<<20)
	l := newMetaLog(256, 8)
	big := make([]byte, 300)
	for i := range big {
		big[i] = 'x'
	}
	rejected := false
	driveLog(t, dev, func(e *core.Exec, req *core.Request) error {
		if err := l.Append(e, req, logEntry{Op: logCreate, Path: string(big)}); err != nil {
			rejected = true
		}
		return nil
	})
	if !rejected {
		t.Fatal("oversized entry accepted")
	}
}

func TestMetaLogTornTailStopsCleanly(t *testing.T) {
	dev := device.New("torn", device.NVMe, 1<<20)
	l := newMetaLog(4096, 16)
	driveLog(t, dev, func(e *core.Exec, req *core.Request) error {
		for i := 0; i < 10; i++ {
			if err := l.Append(e, req, logEntry{Op: logCreate, Path: "ok"}); err != nil {
				return err
			}
		}
		return l.Flush(e, req)
	})
	// Corrupt the middle of the flushed block (torn write).
	dev.WriteAt([]byte(`{"broken`), 200)
	l2 := newMetaLog(4096, 16)
	var entries []logEntry
	driveLog(t, dev, func(e *core.Exec, req *core.Request) error {
		var err error
		entries, err = l2.Replay(e, req)
		return err
	})
	// Entries before the tear survive; the scan stops at the corruption.
	if len(entries) == 0 || len(entries) >= 10 {
		t.Fatalf("torn-tail replay returned %d entries", len(entries))
	}
}
