package labfs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/vtime"
)

// sinkMod is a terminal block module writing straight to a device (log
// tests need a downstream without pulling in the driver package, which
// would create an import cycle in white-box tests).
type sinkMod struct {
	core.Base
	dev *device.Device
}

func (s *sinkMod) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: "test.sink", Consumes: core.APIBlock, Produces: core.APIDriver}
}

func (s *sinkMod) Process(e *core.Exec, req *core.Request) error {
	switch req.Op {
	case core.OpBlockWrite:
		_, err := s.dev.WriteAt(req.Data, req.Offset)
		return err
	case core.OpBlockRead:
		_, err := s.dev.ReadAt(req.Data, req.Offset)
		return err
	}
	return nil
}

func (s *sinkMod) EstProcessingTime(core.Op, int) vtime.Duration { return 0 }

// headMod invokes a test callback with the module's executor context — the
// position LabFS itself occupies when it drives its metadata log.
type headMod struct {
	core.Base
	fn func(e *core.Exec, req *core.Request) error
}

func (h *headMod) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: "test.head", Consumes: core.APIAny, Produces: core.APIBlock}
}

func (h *headMod) Process(e *core.Exec, req *core.Request) error { return h.fn(e, req) }

func (h *headMod) EstProcessingTime(core.Op, int) vtime.Duration { return 0 }

// driveLog runs fn in a module context above a device-backed sink.
func driveLog(t *testing.T, dev *device.Device, fn func(e *core.Exec, req *core.Request) error) {
	t.Helper()
	reg := core.NewRegistry()
	reg.Register("head", &headMod{fn: fn})
	reg.Register("sink", &sinkMod{dev: dev})
	st := core.NewStack("m", core.Rules{}, []core.Vertex{
		{UUID: "head", Outputs: []string{"sink"}},
		{UUID: "sink"},
	})
	e := core.NewExec(reg, nil, nil, 0)
	req := core.NewRequest(core.OpNop)
	if err := e.Submit(st, req); err != nil {
		t.Fatal(err)
	}
	if req.Err != nil {
		t.Fatal(req.Err)
	}
}

func TestMetaLogAppendFlushReplay(t *testing.T) {
	dev := device.New("d", device.NVMe, 16<<20)
	l := newMetaLog(4096, 64)
	driveLog(t, dev, func(e *core.Exec, req *core.Request) error {
		for i := 0; i < 300; i++ {
			if err := l.Append(e, req, logEntry{Op: logCreate, Path: "f", Mode: 0644}); err != nil {
				return err
			}
		}
		return l.Flush(e, req)
	})
	if l.Entries() != 300 {
		t.Fatalf("seq %d", l.Entries())
	}

	// Replay from the same device recovers every entry in order.
	l2 := newMetaLog(4096, 64)
	var entries []logEntry
	driveLog(t, dev, func(e *core.Exec, req *core.Request) error {
		var err error
		entries, err = l2.Replay(e, req)
		return err
	})
	if len(entries) != 300 {
		t.Fatalf("replayed %d entries", len(entries))
	}
	for i, ent := range entries {
		if ent.Seq != uint64(i+1) || ent.Op != logCreate {
			t.Fatalf("entry %d: %+v", i, ent)
		}
	}
	// Appends resume with increasing sequence numbers.
	driveLog(t, dev, func(e *core.Exec, req *core.Request) error {
		return l2.Append(e, req, logEntry{Op: logUnlink, Path: "f"})
	})
	if l2.Entries() != 301 {
		t.Fatalf("resumed seq %d", l2.Entries())
	}
}

func TestMetaLogOverflowDetected(t *testing.T) {
	dev := device.New("d", device.NVMe, 16<<20)
	l := newMetaLog(4096, 2) // two-block log
	failed := false
	driveLog(t, dev, func(e *core.Exec, req *core.Request) error {
		for i := 0; i < 500; i++ {
			if err := l.Append(e, req, logEntry{Op: logCreate, Path: "some/long/path/name"}); err != nil {
				failed = true
				return nil
			}
		}
		return nil
	})
	if !failed {
		t.Fatal("log overflow undetected")
	}
}

func TestMetaLogOversizedEntryRejected(t *testing.T) {
	dev := device.New("d", device.NVMe, 16<<20)
	l := newMetaLog(256, 8)
	big := make([]byte, 300)
	for i := range big {
		big[i] = 'x'
	}
	rejected := false
	driveLog(t, dev, func(e *core.Exec, req *core.Request) error {
		if err := l.Append(e, req, logEntry{Op: logCreate, Path: string(big)}); err != nil {
			rejected = true
		}
		return nil
	})
	if !rejected {
		t.Fatal("oversized entry accepted")
	}
}

// gateSink is a terminal block module whose FIRST OpBlockWrite parks until
// released, simulating a slow device write. It lets the test below prove
// that an in-flight downstream log write no longer blocks other appenders.
type gateSink struct {
	core.Base
	dev     *device.Device
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (s *gateSink) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: "test.gatesink", Consumes: core.APIBlock, Produces: core.APIDriver}
}

func (s *gateSink) Process(e *core.Exec, req *core.Request) error {
	if req.Op == core.OpBlockWrite {
		first := false
		s.once.Do(func() { first = true })
		if first {
			close(s.entered)
			<-s.release
		}
		_, err := s.dev.WriteAt(req.Data, req.Offset)
		return err
	}
	if req.Op == core.OpBlockRead {
		_, err := s.dev.ReadAt(req.Data, req.Offset)
		return err
	}
	return nil
}

func (s *gateSink) EstProcessingTime(core.Op, int) vtime.Duration { return 0 }

// TestMetaLogConcurrentAppendNotSerialized: worker A fills a log block and
// stalls inside the downstream device write; worker B's Append of a
// buffered entry must complete while A is still stalled. Before the
// critical-section shrink, Append held metaLog.mu across the encode and the
// SpawnNext, so B would block behind A's device write.
func TestMetaLogConcurrentAppendNotSerialized(t *testing.T) {
	dev := device.New("d", device.NVMe, 16<<20)
	gate := &gateSink{dev: dev, entered: make(chan struct{}), release: make(chan struct{})}
	l := newMetaLog(4096, 64)

	filler := logEntry{Op: logCreate, Path: strings.Repeat("x", 100)}
	reg := core.NewRegistry()
	reg.Register("head", &headMod{fn: func(e *core.Exec, req *core.Request) error {
		if req.Path == "fill" {
			// Enough appends to fill a block and trigger the gated write.
			for i := 0; i < 60; i++ {
				if err := l.Append(e, req, filler); err != nil {
					return err
				}
			}
			return nil
		}
		return l.Append(e, req, logEntry{Op: logUnlink, Path: "quick"})
	}})
	reg.Register("sink", gate)
	st := core.NewStack("m", core.Rules{}, []core.Vertex{
		{UUID: "head", Outputs: []string{"sink"}},
		{UUID: "sink"},
	})

	fillDone := make(chan error, 1)
	go func() {
		req := core.NewRequest(core.OpNop)
		req.Path = "fill"
		err := core.NewExec(reg, nil, nil, 0).Submit(st, req)
		if err == nil {
			err = req.Err
		}
		fillDone <- err
	}()

	select {
	case <-gate.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("filler never reached the device write")
	}

	// A is parked inside the downstream write. B's buffered append must not
	// serialize behind it.
	quickDone := make(chan error, 1)
	go func() {
		req := core.NewRequest(core.OpNop)
		req.Path = "quick"
		err := core.NewExec(reg, nil, nil, 1).Submit(st, req)
		if err == nil {
			err = req.Err
		}
		quickDone <- err
	}()

	select {
	case err := <-quickDone:
		if err != nil {
			t.Fatalf("concurrent append failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("append serialized behind the in-flight log block write")
	}

	close(gate.release)
	if err := <-fillDone; err != nil {
		t.Fatalf("filler: %v", err)
	}
}

func TestMetaLogTornTailStopsCleanly(t *testing.T) {
	dev := device.New("torn", device.NVMe, 1<<20)
	l := newMetaLog(4096, 16)
	driveLog(t, dev, func(e *core.Exec, req *core.Request) error {
		for i := 0; i < 10; i++ {
			if err := l.Append(e, req, logEntry{Op: logCreate, Path: "ok"}); err != nil {
				return err
			}
		}
		return l.Flush(e, req)
	})
	// Corrupt the middle of the flushed block (torn write).
	dev.WriteAt([]byte(`{"broken`), 200)
	l2 := newMetaLog(4096, 16)
	var entries []logEntry
	driveLog(t, dev, func(e *core.Exec, req *core.Request) error {
		var err error
		entries, err = l2.Replay(e, req)
		return err
	})
	// Entries before the tear survive; the scan stops at the corruption.
	if len(entries) == 0 || len(entries) >= 10 {
		t.Fatalf("torn-tail replay returned %d entries", len(entries))
	}
}
