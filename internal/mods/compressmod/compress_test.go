package compressmod_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/mods/compressmod"
	"labstor/internal/mods/driver"
	"labstor/internal/mods/modtest"
)

func mountZip(t *testing.T, h *modtest.Harness) *core.Stack {
	return h.Mount(t, "blk::/z",
		modtest.ChainVertex{UUID: "zip", Type: compressmod.Type, Attrs: map[string]string{"level": "1"}},
		modtest.ChainVertex{UUID: "drv", Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"}},
	)
}

func TestCompressibleRoundTrip(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountZip(t, h)
	data := bytes.Repeat([]byte("abcabcabc"), 400) // 3600 bytes, low entropy
	w := modtest.BlockWriteReq(0, data)
	if err := h.Run(t, s, w); err != nil {
		t.Fatal(err)
	}
	if w.Result != int64(len(data)) {
		t.Fatalf("caller-visible result %d", w.Result)
	}
	// The caller's buffer and size must be restored.
	if len(w.Data) != len(data) || !bytes.Equal(w.Data, data) {
		t.Fatal("caller payload mutated")
	}
	r := modtest.BlockReadReq(0, len(data))
	if err := h.Run(t, s, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Data, data) {
		t.Fatal("round trip mismatch")
	}
	// The device actually holds fewer payload bytes than the logical size.
	m, _ := h.Registry.Get("zip")
	if m.(*compressmod.Compressor).Ratio() <= 1.5 {
		t.Fatalf("compressible data did not compress: ratio %.2f", m.(*compressmod.Compressor).Ratio())
	}
}

func TestIncompressibleRawFallback(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountZip(t, h)
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 4096)
	rng.Read(data)
	if err := h.Run(t, s, modtest.BlockWriteReq(0, data)); err != nil {
		t.Fatal(err)
	}
	r := modtest.BlockReadReq(0, len(data))
	if err := h.Run(t, s, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Data, data) {
		t.Fatal("raw fallback round trip mismatch")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountZip(t, h)
	off := int64(0)
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		myOff := off
		off += int64(len(data)) + 4096
		if h.Run(t, s, modtest.BlockWriteReq(myOff, data)) != nil {
			return false
		}
		r := modtest.BlockReadReq(myOff, len(data))
		if h.Run(t, s, r) != nil {
			return false
		}
		return bytes.Equal(r.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptFrameDetected(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountZip(t, h)
	data := bytes.Repeat([]byte{1}, 1024)
	h.Run(t, s, modtest.BlockWriteReq(0, data))
	// Corrupt the frame flag on the device.
	h.Dev.WriteAt([]byte{0xEE}, 0)
	r := modtest.BlockReadReq(0, len(data))
	if err := h.Run(t, s, r); err == nil {
		t.Fatal("corrupt frame read succeeded")
	}
}

func TestCompressChargesCPU(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountZip(t, h)
	data := bytes.Repeat([]byte{2}, 64<<10)
	w := modtest.BlockWriteReq(0, data)
	h.Run(t, s, w)
	if w.CPUTime < h.Env.Model.Compress(len(data)) {
		t.Fatalf("compression CPU not charged: %v", w.CPUTime)
	}
	m, _ := h.Registry.Get("zip")
	if est := m.EstProcessingTime(core.OpWrite, 1<<20); est < h.Env.Model.Compress(1<<20) {
		t.Fatal("EstProcessingTime must reflect compression cost")
	}
}

func TestNonDataOpsPassThrough(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountZip(t, h)
	fl := core.NewRequest(core.OpBlockFlush)
	if err := h.Run(t, s, fl); err != nil {
		t.Fatal(err)
	}
}

func TestBadLevelRejected(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	c := &compressmod.Compressor{}
	if err := c.Configure(core.Config{Attrs: map[string]string{"level": "42"}}, h.Env); err == nil {
		t.Fatal("level 42 accepted")
	}
	if err := c.Configure(core.Config{Attrs: map[string]string{"level": "nope"}}, h.Env); err == nil {
		t.Fatal("non-numeric level accepted")
	}
}

func TestStateUpdateCounters(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountZip(t, h)
	h.Run(t, s, modtest.BlockWriteReq(0, bytes.Repeat([]byte{1}, 2048)))
	old, _ := h.Registry.Get("zip")
	ratio := old.(*compressmod.Compressor).Ratio()
	next := &compressmod.Compressor{}
	next.Configure(core.Config{UUID: "zip", Attrs: map[string]string{"level": "1"}}, h.Env)
	h.Registry.Swap("zip", next)
	if next.Ratio() != ratio {
		t.Fatal("ratio counters lost across upgrade")
	}
}
