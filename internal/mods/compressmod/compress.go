// Package compressmod implements the transparent compression LabMod — the
// paper's "Active Storage" example: data is compressed before it is
// persisted and decompressed on the way back, without application changes.
//
// Each compressed block is framed as [1-byte flag][4-byte big-endian
// payload length][payload]. Blocks that do not shrink are stored raw
// (flag 0) so the module never inflates storage beyond the frame header.
package compressmod

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"sync"

	"labstor/internal/core"
	"labstor/internal/telemetry"
	"labstor/internal/vtime"
)

// Type is the registered module type name.
const Type = "labstor.compress"

// Compression is the one stack boundary where copies are inherent: the
// bytes genuinely change representation. Deflate output streams directly
// into the frame/destination, so only the raw-fallback paths memcpy.
var (
	copyFrameRaw  = telemetry.CopySite("compress.frame_raw")
	copyUnwrapRaw = telemetry.CopySite("compress.unwrap_raw")
)

func init() {
	core.RegisterType(Type, func() core.Module { return &Compressor{} })
}

const (
	frameHeader = 5
	flagRaw     = 0
	flagDeflate = 1
)

// Compressor is the compression module instance.
type Compressor struct {
	core.Base
	level int

	mu         sync.Mutex
	bytesIn    int64
	bytesOut   int64
	compressed int64
}

// Info describes the module.
func (c *Compressor) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: Type, Version: "1.0", Consumes: core.APIBlock, Produces: core.APIBlock}
}

// Configure reads the compression level (attr "level", default 1 = fastest).
func (c *Compressor) Configure(cfg core.Config, env *core.Env) error {
	if err := c.Base.Configure(cfg, env); err != nil {
		return err
	}
	lvl, err := strconv.Atoi(cfg.Attr("level", "1"))
	if err != nil || lvl < flate.HuffmanOnly || lvl > flate.BestCompression {
		return fmt.Errorf("compressmod: bad level attribute %q", cfg.Attr("level", "1"))
	}
	c.level = lvl
	return nil
}

// Process compresses write payloads and decompresses read results.
func (c *Compressor) Process(e *core.Exec, req *core.Request) error {
	switch req.Op {
	case core.OpBlockWrite, core.OpWrite, core.OpAppend, core.OpPut:
		return c.processWrite(e, req)
	case core.OpBlockRead, core.OpRead, core.OpGet:
		return c.processRead(e, req)
	default:
		return e.Next(req)
	}
}

func (c *Compressor) processWrite(e *core.Exec, req *core.Request) error {
	orig := req.Data
	req.Charge("compress", e.Model.Compress(len(orig)))

	var hdr [frameHeader]byte
	var buf bytes.Buffer
	buf.Write(hdr[:])
	w, err := flate.NewWriter(&buf, c.level)
	if err != nil {
		return err
	}
	if _, err := w.Write(orig); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}

	framed := buf.Bytes()
	var scratch []byte // arena buffer to release after the downstream write
	if buf.Len()-frameHeader >= len(orig) {
		// Incompressible: store raw in an arena scratch frame.
		framed = core.AcquireBuf(frameHeader + len(orig))
		scratch = framed
		framed[0] = flagRaw
		binary.BigEndian.PutUint32(framed[1:frameHeader], uint32(len(orig)))
		copyFrameRaw.Add(copy(framed[frameHeader:], orig))
	} else {
		framed[0] = flagDeflate
		binary.BigEndian.PutUint32(framed[1:frameHeader], uint32(buf.Len()-frameHeader))
	}

	c.mu.Lock()
	c.bytesIn += int64(len(orig))
	c.bytesOut += int64(len(framed))
	c.compressed++
	c.mu.Unlock()

	req.Data = framed
	req.Size = len(framed)
	// Detach the payload handle while Data points at the frame: the frame
	// is scratch, not the registered buffer, and downstream mods must not
	// pair the handle with the wrong bytes.
	origBuf := req.Buf
	req.Buf = core.BufHandle{}
	err = e.Next(req)
	// Restore the caller's view of the payload.
	req.Data = orig
	req.Size = len(orig)
	req.Buf = origBuf
	core.ReleaseBuf(scratch)
	if err == nil {
		req.Result = int64(len(orig))
	}
	return err
}

func (c *Compressor) processRead(e *core.Exec, req *core.Request) error {
	want := req.Size
	dst := req.Data
	// Read the full frame region downstream into an arena scratch buffer.
	// The frame is at most header + original size (raw fallback guarantee).
	frame := core.AcquireBuf(frameHeader + want)
	defer core.ReleaseBuf(frame)
	req.Data = frame
	req.Size = len(frame)
	// Detach handles while Data points at the frame scratch — a cache
	// below must not retain the caller's destination as the page backing
	// this (compressed) block.
	origBuf, origVH := req.Buf, req.ValueH
	req.Buf, req.ValueH = core.BufHandle{}, core.BufHandle{}
	err := e.Next(req)
	req.Data = dst
	req.Size = want
	req.Buf, req.ValueH = origBuf, origVH
	if err != nil {
		return err
	}
	flag := frame[0]
	n := int(binary.BigEndian.Uint32(frame[1:frameHeader]))
	if n < 0 || n > len(frame)-frameHeader {
		return fmt.Errorf("compressmod: corrupt frame at offset %d (len %d)", req.Offset, n)
	}
	payload := frame[frameHeader : frameHeader+n]

	if req.Data == nil {
		req.Data = req.CompleteValue(want)
	}
	var copied int
	switch flag {
	case flagRaw:
		copied = copy(req.Data, payload)
		copyUnwrapRaw.Add(copied)
	case flagDeflate:
		// Decompress straight into the destination — the transform's
		// output lands in its final buffer with no intermediate copy.
		req.Charge("decompress", e.Model.Compress(want)/2)
		r := flate.NewReader(bytes.NewReader(payload))
		copied, err = io.ReadFull(r, req.Data[:want])
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			err = nil // short logical tail: the frame held fewer bytes
		}
		if err != nil {
			return fmt.Errorf("compressmod: decompress at offset %d: %w", req.Offset, err)
		}
	default:
		return fmt.Errorf("compressmod: unknown frame flag %d at offset %d", flag, req.Offset)
	}
	req.Result = int64(copied)
	return nil
}

// Ratio returns the achieved compression ratio (input/output bytes).
func (c *Compressor) Ratio() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.bytesOut == 0 {
		return 1
	}
	return float64(c.bytesIn) / float64(c.bytesOut)
}

// StateUpdate carries counters across a live upgrade.
func (c *Compressor) StateUpdate(prev core.Module) error {
	if old, ok := prev.(*Compressor); ok {
		old.mu.Lock()
		defer old.mu.Unlock()
		c.mu.Lock()
		defer c.mu.Unlock()
		c.bytesIn, c.bytesOut, c.compressed = old.bytesIn, old.bytesOut, old.compressed
	}
	return nil
}

// EstProcessingTime estimates compression CPU cost — large writes through
// this module are "computational" requests for the Work Orchestrator.
func (c *Compressor) EstProcessingTime(op core.Op, size int) vtime.Duration {
	if op.IsWrite() {
		return c.Env.Model.Compress(size)
	}
	return c.Env.Model.Compress(size) / 2
}
