// Package driver implements LabStor's Driver LabMods — the terminal
// vertices of a LabStack that talk to (simulated) storage hardware:
//
//   - KernelDriver exposes the Linux multi-queue driver's hardware dispatch
//     queues directly (the paper's submit_io_to_hctx path through the Kernel
//     Ops Manager): no syscall per I/O, but kernel request structures must
//     still be allocated;
//   - SPDK models a fully userspace polled NVMe driver: commands are built
//     in userspace and rung directly on a device queue, with no kernel
//     structures at all;
//   - DAX models byte-addressable persistent-memory access: data moves with
//     CPU load/store (memcpy) and there is no block indirection.
//
// All three are functional (bytes land on the simulated device and read
// back) and charge their calibrated software cost in virtual time, which is
// what produces the Fig. 6 storage-API ladder.
package driver

import (
	"fmt"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/vtime"
)

// Type names registered with the core module factory.
const (
	KernelDriverType = "labstor.kernel_driver"
	SPDKType         = "labstor.spdk"
	DAXType          = "labstor.dax"
)

func init() {
	core.RegisterType(KernelDriverType, func() core.Module { return &KernelDriver{} })
	core.RegisterType(SPDKType, func() core.Module { return &SPDK{} })
	core.RegisterType(DAXType, func() core.Module { return &DAX{} })
}

// resolveDevice fetches the device named by the vertex's "device" attribute.
func resolveDevice(b *core.Base) (*device.Device, error) {
	name := b.Cfg.Attr("device", "")
	if name == "" {
		return nil, fmt.Errorf("driver: vertex %q has no 'device' attribute", b.Cfg.UUID)
	}
	return b.Env.Device(name)
}

func opOf(req *core.Request) (device.Op, error) {
	switch req.Op {
	case core.OpBlockRead, core.OpRead, core.OpGet:
		return device.Read, nil
	case core.OpBlockWrite, core.OpWrite, core.OpAppend, core.OpPut:
		return device.Write, nil
	default:
		return device.Read, fmt.Errorf("driver: %w: %s", core.ErrNotSupported, req.Op)
	}
}

// KernelDriver is the MQ kernel driver LabMod.
type KernelDriver struct {
	core.Base
	dev *device.Device
}

// Info describes the module.
func (d *KernelDriver) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: KernelDriverType, Version: "1.0", Consumes: core.APIBlock, Produces: core.APIDriver}
}

// Configure binds the device.
func (d *KernelDriver) Configure(cfg core.Config, env *core.Env) error {
	if err := d.Base.Configure(cfg, env); err != nil {
		return err
	}
	dev, err := resolveDevice(&d.Base)
	if err != nil {
		return err
	}
	d.dev = dev
	return nil
}

// Process submits the block request to the hardware dispatch queue selected
// by the upstream I/O scheduler (req.Hctx).
func (d *KernelDriver) Process(e *core.Exec, req *core.Request) error {
	switch req.Op {
	case core.OpBlockFlush:
		req.Charge("driver", e.Model.KernelDriverSubmit)
		return nil
	case core.OpBlockDiscard:
		req.Charge("driver", e.Model.KernelDriverSubmit)
		return d.dev.Trim(req.Offset, int64(req.Size))
	}
	op, err := opOf(req)
	if err != nil {
		return err
	}
	// Kernel request structure allocation + doorbell through the KO manager.
	req.Charge("driver", e.Model.KernelDriverSubmit)
	buf := req.Data
	if op == device.Read && buf == nil {
		// Arena-backed result buffer: recycled when the caller Releases the
		// request (the device read below fills it fully).
		buf = req.CompleteValue(req.Size)
	}
	_, end, err := d.dev.SubmitToQueue(req.Hctx, op, req.Offset, buf, req.Clock)
	if err != nil {
		return err
	}
	req.ChargeIO("io", end)
	req.Result = int64(len(buf))
	return nil
}

// EstProcessingTime estimates CPU cost per request.
func (d *KernelDriver) EstProcessingTime(op core.Op, size int) vtime.Duration {
	return d.Env.Model.KernelDriverSubmit
}

// StateRepair revalidates the device binding.
func (d *KernelDriver) StateRepair() error {
	dev, err := resolveDevice(&d.Base)
	if err != nil {
		return err
	}
	d.dev = dev
	return nil
}

// SPDK is the fully userspace polled NVMe driver LabMod.
type SPDK struct {
	core.Base
	dev *device.Device
}

// Info describes the module.
func (d *SPDK) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: SPDKType, Version: "1.0", Consumes: core.APIBlock, Produces: core.APIDriver}
}

// Configure binds the device.
func (d *SPDK) Configure(cfg core.Config, env *core.Env) error {
	if err := d.Base.Configure(cfg, env); err != nil {
		return err
	}
	dev, err := resolveDevice(&d.Base)
	if err != nil {
		return err
	}
	d.dev = dev
	return nil
}

// Process builds the NVMe command in userspace and rings the queue
// directly; completion is polled, so no interrupt or kernel structure cost.
func (d *SPDK) Process(e *core.Exec, req *core.Request) error {
	switch req.Op {
	case core.OpBlockFlush:
		req.Charge("driver", e.Model.SPDKSubmit)
		return nil
	case core.OpBlockDiscard:
		req.Charge("driver", e.Model.SPDKSubmit)
		return d.dev.Trim(req.Offset, int64(req.Size))
	}
	op, err := opOf(req)
	if err != nil {
		return err
	}
	req.Charge("driver", e.Model.SPDKSubmit)
	buf := req.Data
	if op == device.Read && buf == nil {
		// Arena-backed result buffer: recycled when the caller Releases the
		// request (the device read below fills it fully).
		buf = req.CompleteValue(req.Size)
	}
	_, end, err := d.dev.SubmitToQueue(req.Hctx, op, req.Offset, buf, req.Clock)
	if err != nil {
		return err
	}
	req.ChargeIO("io", end)
	req.Result = int64(len(buf))
	return nil
}

// EstProcessingTime estimates CPU cost per request.
func (d *SPDK) EstProcessingTime(op core.Op, size int) vtime.Duration {
	return d.Env.Model.SPDKSubmit
}

// StateRepair revalidates the device binding.
func (d *SPDK) StateRepair() error {
	dev, err := resolveDevice(&d.Base)
	if err != nil {
		return err
	}
	d.dev = dev
	return nil
}

// DAX is the byte-addressable persistent-memory LabMod: the device is
// mapped into the address space and accessed with load/store.
type DAX struct {
	core.Base
	dev *device.Device
}

// Info describes the module.
func (d *DAX) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: DAXType, Version: "1.0", Consumes: core.APIBlock, Produces: core.APIDriver}
}

// Configure binds the device and checks it is byte-addressable.
func (d *DAX) Configure(cfg core.Config, env *core.Env) error {
	if err := d.Base.Configure(cfg, env); err != nil {
		return err
	}
	dev, err := resolveDevice(&d.Base)
	if err != nil {
		return err
	}
	if !dev.Profile.ByteAddressable {
		return fmt.Errorf("driver: DAX requires a byte-addressable device, %s is %s", dev.Name, dev.Class())
	}
	d.dev = dev
	return nil
}

// Process performs the mapped-memory copy. There is no command submission
// at all: the transfer time is the media's load/store bandwidth, plus a
// tiny fixed mapping/flush cost.
func (d *DAX) Process(e *core.Exec, req *core.Request) error {
	switch req.Op {
	case core.OpBlockFlush:
		req.Charge("driver", e.Model.DAXAccessSetup) // clwb+fence
		return nil
	case core.OpBlockDiscard:
		req.Charge("driver", e.Model.DAXAccessSetup)
		return d.dev.Trim(req.Offset, int64(req.Size))
	}
	op, err := opOf(req)
	if err != nil {
		return err
	}
	req.Charge("driver", e.Model.DAXAccessSetup)
	buf := req.Data
	if op == device.Read && buf == nil {
		// Arena-backed result buffer: recycled when the caller Releases the
		// request (the device read below fills it fully).
		buf = req.CompleteValue(req.Size)
	}
	_, end, err := d.dev.Submit(op, req.Offset, buf, req.Clock)
	if err != nil {
		return err
	}
	req.ChargeIO("io", end)
	req.Result = int64(len(buf))
	return nil
}

// EstProcessingTime estimates CPU cost per request (the memcpy occupies the
// CPU for DAX, unlike DMA-based drivers).
func (d *DAX) EstProcessingTime(op core.Op, size int) vtime.Duration {
	return d.Env.Model.DAXAccessSetup + d.Env.Model.Copy(size)
}

// StateRepair revalidates the device binding.
func (d *DAX) StateRepair() error {
	dev, err := resolveDevice(&d.Base)
	if err != nil {
		return err
	}
	d.dev = dev
	return nil
}
