package driver_test

import (
	"bytes"
	"testing"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/mods/driver"
	"labstor/internal/mods/modtest"
)

func TestKernelDriverRoundTrip(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := h.Mount(t, "blk::/kd", modtest.ChainVertex{
		UUID: "drv", Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"},
	})
	data := []byte("kernel driver payload")
	w := modtest.BlockWriteReq(8192, data)
	if err := h.Run(t, s, w); err != nil {
		t.Fatal(err)
	}
	if w.Result != int64(len(data)) {
		t.Fatalf("result %d", w.Result)
	}
	r := modtest.BlockReadReq(8192, len(data))
	if err := h.Run(t, s, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Data, data) {
		t.Fatal("mismatch")
	}
	if r.Latency() <= 0 {
		t.Fatal("no modeled latency")
	}
}

func TestSPDKFasterThanKernelDriver(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	kd := h.Mount(t, "blk::/kd", modtest.ChainVertex{
		UUID: "kd", Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"},
	})
	sp := h.Mount(t, "blk::/spdk", modtest.ChainVertex{
		UUID: "spdk", Type: driver.SPDKType, Attrs: map[string]string{"device": "dev0"},
	})
	buf := make([]byte, 4096)
	w1 := modtest.BlockWriteReq(0, buf)
	w1.Hctx = 1
	h.Run(t, kd, w1)
	w2 := modtest.BlockWriteReq(8192, buf)
	w2.Hctx = 2
	h.Run(t, sp, w2)
	if w2.CPUTime >= w1.CPUTime {
		t.Fatalf("SPDK CPU (%v) must undercut kernel driver (%v)", w2.CPUTime, w1.CPUTime)
	}
}

func TestDAXRequiresByteAddressable(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	m, err := core.NewModule(driver.DAXType)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Configure(core.Config{UUID: "dax", Attrs: map[string]string{"device": "dev0"}}, h.Env); err == nil {
		t.Fatal("DAX configured over NVMe")
	}
}

func TestDAXRoundTripOnPMEM(t *testing.T) {
	h := modtest.New(t, device.PMEM, 64<<20)
	s := h.Mount(t, "blk::/dax", modtest.ChainVertex{
		UUID: "dax", Type: driver.DAXType, Attrs: map[string]string{"device": "dev0"},
	})
	data := []byte("byte addressable")
	if err := h.Run(t, s, modtest.BlockWriteReq(100, data)); err != nil {
		t.Fatal(err) // unaligned offsets are fine: DAX is byte-addressable
	}
	r := modtest.BlockReadReq(100, len(data))
	if err := h.Run(t, s, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Data, data) {
		t.Fatal("mismatch")
	}
}

func TestDriverFlushAndDiscard(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := h.Mount(t, "blk::/kd", modtest.ChainVertex{
		UUID: "drv", Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"},
	})
	fl := core.NewRequest(core.OpBlockFlush)
	if err := h.Run(t, s, fl); err != nil {
		t.Fatal(err)
	}
	// Discard returns a written range to zeros.
	h.Run(t, s, modtest.BlockWriteReq(0, bytes.Repeat([]byte{0xFF}, 128<<10)))
	disc := core.NewRequest(core.OpBlockDiscard)
	disc.Offset = 0
	disc.Size = 128 << 10
	if err := h.Run(t, s, disc); err != nil {
		t.Fatal(err)
	}
	r := modtest.BlockReadReq(64<<10, 16)
	h.Run(t, s, r)
	for _, b := range r.Data {
		if b != 0 {
			t.Fatal("discard did not zero")
		}
	}
}

func TestDriverRejectsUnknownOps(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := h.Mount(t, "blk::/kd", modtest.ChainVertex{
		UUID: "drv", Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"},
	})
	bad := core.NewRequest(core.OpRename)
	if err := h.Run(t, s, bad); err == nil {
		t.Fatal("rename handled by a block driver")
	}
}

func TestDriverMissingDeviceAttr(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	for _, typ := range []string{driver.KernelDriverType, driver.SPDKType, driver.DAXType} {
		m, _ := core.NewModule(typ)
		if err := m.Configure(core.Config{UUID: "x"}, h.Env); err == nil {
			t.Fatalf("%s configured without device", typ)
		}
	}
}

func TestDriverReadAllocatesBuffer(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := h.Mount(t, "blk::/kd", modtest.ChainVertex{
		UUID: "drv", Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"},
	})
	r := core.NewRequest(core.OpBlockRead) // no Data buffer provided
	r.Offset = 0
	r.Size = 512
	if err := h.Run(t, s, r); err != nil {
		t.Fatal(err)
	}
	if len(r.Value) != 512 {
		t.Fatalf("driver did not allocate: %d", len(r.Value))
	}
}

func TestSPDKFlushDiscardAndReadAlloc(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := h.Mount(t, "blk::/spdk", modtest.ChainVertex{
		UUID: "spdk", Type: driver.SPDKType, Attrs: map[string]string{"device": "dev0"},
	})
	if err := h.Run(t, s, core.NewRequest(core.OpBlockFlush)); err != nil {
		t.Fatal(err)
	}
	h.Run(t, s, modtest.BlockWriteReq(0, bytes.Repeat([]byte{1}, 128<<10)))
	disc := core.NewRequest(core.OpBlockDiscard)
	disc.Size = 128 << 10
	if err := h.Run(t, s, disc); err != nil {
		t.Fatal(err)
	}
	r := core.NewRequest(core.OpBlockRead)
	r.Size = 256
	if err := h.Run(t, s, r); err != nil {
		t.Fatal(err)
	}
	if len(r.Value) != 256 {
		t.Fatal("spdk read alloc")
	}
	if err := h.Run(t, s, core.NewRequest(core.OpRename)); err == nil {
		t.Fatal("spdk handled rename")
	}
	m, _ := h.Registry.Get("spdk")
	if err := m.StateRepair(); err != nil {
		t.Fatal(err)
	}
	if m.EstProcessingTime(core.OpBlockWrite, 4096) <= 0 {
		t.Fatal("est")
	}
}

func TestDAXFlushDiscardAndReadAlloc(t *testing.T) {
	h := modtest.New(t, device.PMEM, 64<<20)
	s := h.Mount(t, "blk::/dax", modtest.ChainVertex{
		UUID: "dax", Type: driver.DAXType, Attrs: map[string]string{"device": "dev0"},
	})
	if err := h.Run(t, s, core.NewRequest(core.OpBlockFlush)); err != nil {
		t.Fatal(err)
	}
	h.Run(t, s, modtest.BlockWriteReq(0, bytes.Repeat([]byte{1}, 64<<10)))
	disc := core.NewRequest(core.OpBlockDiscard)
	disc.Size = 64 << 10
	if err := h.Run(t, s, disc); err != nil {
		t.Fatal(err)
	}
	r := core.NewRequest(core.OpBlockRead)
	r.Size = 64
	if err := h.Run(t, s, r); err != nil {
		t.Fatal(err)
	}
	if len(r.Value) != 64 {
		t.Fatal("dax read alloc")
	}
	if err := h.Run(t, s, core.NewRequest(core.OpRename)); err == nil {
		t.Fatal("dax handled rename")
	}
	m, _ := h.Registry.Get("dax")
	if err := m.StateRepair(); err != nil {
		t.Fatal(err)
	}
	if m.EstProcessingTime(core.OpBlockRead, 4096) <= 0 {
		t.Fatal("est")
	}
}

func TestKernelDriverEst(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	h.Mount(t, "blk::/kd", modtest.ChainVertex{
		UUID: "drv", Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"},
	})
	m, _ := h.Registry.Get("drv")
	if m.EstProcessingTime(core.OpBlockWrite, 4096) <= 0 {
		t.Fatal("est")
	}
}

func TestDriverStateRepair(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	h.Mount(t, "blk::/kd", modtest.ChainVertex{
		UUID: "drv", Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"},
	})
	m, _ := h.Registry.Get("drv")
	if err := m.StateRepair(); err != nil {
		t.Fatal(err)
	}
}
