// Package readahead implements a predictive prefetch LabMod — the paper's
// example of using access-pattern analysis in userspace I/O policies
// ("time series analysis can be used to predict characteristics of future
// I/O requests"). The module watches per-stream block access patterns;
// when it detects a sequential run, it prefetches a configurable window of
// upcoming blocks into an internal buffer so subsequent reads complete
// without device round trips.
//
// Compose it above a driver (and typically below a cache):
//
//	fs -> lru -> readahead -> sched -> driver
package readahead

import (
	"strconv"
	"sync"

	"labstor/internal/core"
	"labstor/internal/telemetry"
	"labstor/internal/vtime"
)

// Type is the registered module type name.
const Type = "labstor.readahead"

func init() {
	core.RegisterType(Type, func() core.Module { return &Prefetcher{} })
}

// copyHitOut fires only when a hit must land in a caller-chosen
// destination; hits with no destination transfer the prefetched buffer
// by handle ownership — zero copies.
var copyHitOut = telemetry.CopySite("readahead.hit_copy_out")

// Prefetcher is the readahead module instance.
type Prefetcher struct {
	core.Base

	blockSize int
	window    int // blocks to prefetch on a detected sequential run
	trigger   int // consecutive sequential hits required

	mu sync.Mutex
	// streak tracks the current sequential run length per predicted next
	// offset.
	streak map[int64]int
	// buf holds prefetched blocks by device offset. Each entry owns one
	// handle reference; a hit either moves the handle to the request
	// (zero-copy) or copies and releases it.
	buf      map[int64]core.BufHandle
	capacity int

	hits       int64
	prefetches int64
}

// Info describes the module.
func (p *Prefetcher) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: Type, Version: "1.0", Consumes: core.APIBlock, Produces: core.APIBlock}
}

// Configure reads block_kb (default 4), window (default 8 blocks),
// trigger (default 2 sequential accesses) and capacity_blocks (default 256).
func (p *Prefetcher) Configure(cfg core.Config, env *core.Env) error {
	if err := p.Base.Configure(cfg, env); err != nil {
		return err
	}
	bk, _ := strconv.Atoi(cfg.Attr("block_kb", "4"))
	if bk < 1 {
		bk = 4
	}
	p.blockSize = bk << 10
	p.window, _ = strconv.Atoi(cfg.Attr("window", "8"))
	if p.window < 1 {
		p.window = 8
	}
	p.trigger, _ = strconv.Atoi(cfg.Attr("trigger", "2"))
	if p.trigger < 1 {
		p.trigger = 2
	}
	p.capacity, _ = strconv.Atoi(cfg.Attr("capacity_blocks", "256"))
	if p.capacity < p.window {
		p.capacity = p.window
	}
	p.streak = make(map[int64]int)
	p.buf = make(map[int64]core.BufHandle)
	return nil
}

// Process serves reads from the prefetch buffer when possible, detects
// sequential runs, and issues the prefetch window downstream.
func (p *Prefetcher) Process(e *core.Exec, req *core.Request) error {
	switch req.Op {
	case core.OpBlockRead, core.OpRead:
	case core.OpBlockWrite, core.OpWrite, core.OpAppend:
		// Writes invalidate overlapping prefetched blocks.
		p.mu.Lock()
		for off := req.Offset - req.Offset%int64(p.blockSize); off < req.Offset+int64(req.Size); off += int64(p.blockSize) {
			if h, ok := p.buf[off]; ok {
				delete(p.buf, off)
				h.Release()
			}
		}
		p.mu.Unlock()
		return e.Next(req)
	default:
		return e.Next(req)
	}

	aligned := req.Size == p.blockSize && req.Offset%int64(p.blockSize) == 0
	if !aligned {
		return e.Next(req)
	}

	// Served from the prefetch buffer?
	p.mu.Lock()
	if h, ok := p.buf[req.Offset]; ok {
		delete(p.buf, req.Offset) // single use; the cache above retains it
		p.hits++
		p.mu.Unlock()
		if req.Data == nil {
			// Ownership transfer: the prefetched buffer becomes the
			// request's result outright — no copy, no charge.
			req.ValueH = h
			req.Value = h.Bytes()
			req.Data = req.Value
			req.Result = int64(p.blockSize)
			return nil
		}
		req.Charge("readahead", e.Model.Copy(req.Size))
		copyHitOut.Add(copy(req.Data, h.Bytes()))
		h.Release()
		req.Result = int64(p.blockSize)
		return nil
	}
	// Pattern detection: did this read extend a run?
	run := p.streak[req.Offset] + 1
	delete(p.streak, req.Offset)
	next := req.Offset + int64(p.blockSize)
	p.streak[next] = run
	if len(p.streak) > 1024 {
		p.streak = map[int64]int{next: run}
	}
	shouldPrefetch := run >= p.trigger
	p.mu.Unlock()

	if err := e.Next(req); err != nil {
		return err
	}

	if shouldPrefetch {
		// Fetch the window concurrently in virtual time; the prefetch
		// overlaps with the application's next think time, so it does not
		// extend this request's critical path: children start at the
		// request's post-read clock but the parent does not absorb them.
		base := req.Clock
		for i := 1; i <= p.window; i++ {
			off := req.Offset + int64(i)*int64(p.blockSize)
			p.mu.Lock()
			_, have := p.buf[off]
			full := len(p.buf) >= p.capacity
			p.mu.Unlock()
			if have || full {
				continue
			}
			child := req.Child(core.OpBlockRead)
			child.Clock = base
			child.Offset = off
			child.Size = p.blockSize
			h := core.AcquireHandle(req.HomeNode, p.blockSize)
			child.Data = h.Bytes()
			child.Buf = h
			if err := e.Next(child); err != nil {
				h.Release()
				return nil // prefetch failures are not request failures
			}
			child.Buf = core.BufHandle{}
			req.CPUTime += child.CPUTime
			p.mu.Lock()
			if _, dup := p.buf[off]; dup {
				p.mu.Unlock()
				h.Release()
				continue
			}
			p.buf[off] = h
			p.prefetches++
			// Extend the detected run past the prefetched region.
			p.streak[off+int64(p.blockSize)] = run + i
			p.mu.Unlock()
		}
	}
	return nil
}

// Stats returns hit and prefetch counters.
func (p *Prefetcher) Stats() (hits, prefetches int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.prefetches
}

// Buffered returns the number of blocks currently held.
func (p *Prefetcher) Buffered() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf)
}

// StateUpdate migrates the prefetch buffer and pattern state.
func (p *Prefetcher) StateUpdate(prev core.Module) error {
	if old, ok := prev.(*Prefetcher); ok {
		old.mu.Lock()
		defer old.mu.Unlock()
		p.mu.Lock()
		defer p.mu.Unlock()
		p.buf = old.buf
		p.streak = old.streak
		p.hits, p.prefetches = old.hits, old.prefetches
	}
	return nil
}

// EstProcessingTime is small: a map lookup plus an occasional async window.
func (p *Prefetcher) EstProcessingTime(op core.Op, size int) vtime.Duration {
	return p.Env.Model.ModLookup + p.Env.Model.Copy(size)
}
