package readahead_test

import (
	"bytes"
	"testing"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/mods/driver"
	"labstor/internal/mods/modtest"
	"labstor/internal/mods/readahead"
)

func mountRA(t *testing.T, h *modtest.Harness, attrs map[string]string) *core.Stack {
	if attrs == nil {
		attrs = map[string]string{}
	}
	return h.Mount(t, "blk::/ra",
		modtest.ChainVertex{UUID: "ra", Type: readahead.Type, Attrs: attrs},
		modtest.ChainVertex{UUID: "drv", Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"}},
	)
}

func raInstance(t *testing.T, h *modtest.Harness) *readahead.Prefetcher {
	m, _ := h.Registry.Get("ra")
	return m.(*readahead.Prefetcher)
}

func seed(t *testing.T, h *modtest.Harness, blocks int) [][]byte {
	t.Helper()
	out := make([][]byte, blocks)
	for i := 0; i < blocks; i++ {
		out[i] = bytes.Repeat([]byte{byte(i + 1)}, 4096)
		if _, err := h.Dev.WriteAt(out[i], int64(i)*4096); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestSequentialDetectionAndHits(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountRA(t, h, map[string]string{"trigger": "2", "window": "4"})
	want := seed(t, h, 32)

	for i := 0; i < 16; i++ {
		r := modtest.BlockReadReq(int64(i)*4096, 4096)
		if err := h.Run(t, s, r); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r.Data, want[i]) {
			t.Fatalf("block %d content mismatch", i)
		}
	}
	ra := raInstance(t, h)
	hits, prefetches := ra.Stats()
	if prefetches == 0 {
		t.Fatal("sequential run never triggered prefetch")
	}
	if hits < 8 {
		t.Fatalf("too few prefetch hits: %d", hits)
	}
}

func TestRandomAccessDoesNotPrefetch(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountRA(t, h, map[string]string{"trigger": "3"})
	seed(t, h, 64)
	offsets := []int64{40, 3, 17, 55, 9, 28, 61, 1}
	for _, o := range offsets {
		r := modtest.BlockReadReq(o*4096, 4096)
		if err := h.Run(t, s, r); err != nil {
			t.Fatal(err)
		}
	}
	_, prefetches := raInstance(t, h).Stats()
	if prefetches != 0 {
		t.Fatalf("random access triggered %d prefetches", prefetches)
	}
}

func TestWriteInvalidatesPrefetchedBlock(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountRA(t, h, map[string]string{"trigger": "1", "window": "4"})
	seed(t, h, 16)
	// Read block 0: prefetches 1..4.
	h.Run(t, s, modtest.BlockReadReq(0, 4096))
	if raInstance(t, h).Buffered() == 0 {
		t.Fatal("nothing prefetched")
	}
	// Overwrite block 1, then read it: must see the NEW data.
	fresh := bytes.Repeat([]byte{0xEE}, 4096)
	h.Run(t, s, modtest.BlockWriteReq(4096, fresh))
	r := modtest.BlockReadReq(4096, 4096)
	h.Run(t, s, r)
	if !bytes.Equal(r.Data, fresh) {
		t.Fatal("stale prefetched block served after write")
	}
}

func TestPrefetchHitSkipsDevice(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountRA(t, h, map[string]string{"trigger": "1", "window": "8"})
	seed(t, h, 32)
	h.Run(t, s, modtest.BlockReadReq(0, 4096)) // triggers window fetch of 1..8
	reads0, _, _, _, _ := h.Dev.Stats()
	r := modtest.BlockReadReq(4096, 4096)
	h.Run(t, s, r)
	reads1, _, _, _, _ := h.Dev.Stats()
	if reads1 != reads0 {
		t.Fatal("prefetched block still read the device")
	}
}

func TestCapacityBounded(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountRA(t, h, map[string]string{"trigger": "1", "window": "8", "capacity_blocks": "8"})
	seed(t, h, 128)
	for i := 0; i < 64; i++ {
		h.Run(t, s, modtest.BlockReadReq(int64(i)*4096, 4096))
	}
	if got := raInstance(t, h).Buffered(); got > 8 {
		t.Fatalf("buffer exceeded capacity: %d", got)
	}
}

func TestStateUpdateKeepsBuffer(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountRA(t, h, map[string]string{"trigger": "1", "window": "4"})
	seed(t, h, 16)
	h.Run(t, s, modtest.BlockReadReq(0, 4096))
	next := &readahead.Prefetcher{}
	next.Configure(core.Config{UUID: "ra", Attrs: map[string]string{"trigger": "1", "window": "4"}}, h.Env)
	if err := h.Registry.Swap("ra", next); err != nil {
		t.Fatal(err)
	}
	if next.Buffered() == 0 {
		t.Fatal("buffer lost in upgrade")
	}
}

func TestUnalignedBypass(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountRA(t, h, nil)
	seed(t, h, 4)
	r := modtest.BlockReadReq(100, 200)
	if err := h.Run(t, s, r); err != nil {
		t.Fatal(err)
	}
	if r.Result != 200 {
		t.Fatalf("unaligned read result %d", r.Result)
	}
}
