// Benchmarks: one testing.B benchmark per table/figure of the paper's
// evaluation. Each benchmark runs its experiment at reduced scale and
// reports the experiment's headline quantity as a custom metric, so
// `go test -bench=. -benchmem` regenerates the whole evaluation:
//
//	BenchmarkFig4Anatomy       — I/O stack anatomy (us/op write)
//	BenchmarkTable1LiveUpgrade — live upgrade overhead (virtual s)
//	BenchmarkFig5aDynamicCPU   — dynamic CPU allocation (IOPS, cores)
//	BenchmarkFig5bPartitioning — request partitioning (L-App us, C-App MB/s)
//	BenchmarkFig6StorageAPI    — storage API ladder (normalized IOPS)
//	BenchmarkFig7Metadata      — metadata throughput (kops/s)
//	BenchmarkFig8Schedulers    — I/O scheduler comparison (us)
//	BenchmarkFig9aPFS          — PFS over customized stacks (speedup)
//	BenchmarkFig9bLabios       — LABIOS label store (kops/s)
//	BenchmarkFig9cFilebench    — Filebench personalities (kops/s)
//
// Raw per-request microbenchmarks of the platform live alongside
// (BenchmarkRequestRoundTrip*, BenchmarkLabFSWrite4K, ...).
package labstor_test

import (
	"fmt"
	"testing"

	"labstor"
	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/experiments"
	"labstor/internal/ipc"
	"labstor/internal/runtime"
)

// benchExperiment runs fn once per b.N loop (experiments are macro-level;
// b.N is typically 1) and records the named result values as metrics.
func benchExperiment(b *testing.B, fn func() (*experiments.Result, error), metrics map[string]string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		for key, unit := range metrics {
			if v, ok := res.Values[key]; ok {
				b.ReportMetric(v, unit)
			}
		}
		if i == 0 {
			b.Logf("\n%s", res.String())
		}
	}
}

func BenchmarkFig4Anatomy(b *testing.B) {
	benchExperiment(b, experiments.Anatomy, map[string]string{
		"write_us":      "us/write",
		"read_us":       "us/read",
		"write_pct_I/O": "io%",
		"write_pct_IPC": "ipc%",
	})
}

func BenchmarkTable1LiveUpgrade(b *testing.B) {
	benchExperiment(b, func() (*experiments.Result, error) {
		return experiments.LiveUpgrade(20000, []int{0, 256, 1024})
	}, map[string]string{
		"centralized_0":    "s@0up",
		"centralized_1024": "s@1024up",
	})
}

func BenchmarkFig5aDynamicCPU(b *testing.B) {
	benchExperiment(b, func() (*experiments.Result, error) {
		return experiments.DynamicCPU([]int{1, 8, 16}, 2<<20)
	}, map[string]string{
		"iops_dynamic_16":   "iops-dyn",
		"iops_8-workers_16": "iops-8w",
		"cores_dynamic_16":  "cores-dyn",
	})
}

func BenchmarkFig5bPartitioning(b *testing.B) {
	benchExperiment(b, func() (*experiments.Result, error) {
		return experiments.Partitioning([]int{4}, 60, 1, 1<<20)
	}, map[string]string{
		"lat_round_robin_4": "us-rr",
		"lat_dynamic_4":     "us-dyn",
		"bw_round_robin_4":  "MBps-rr",
		"bw_dynamic_4":      "MBps-dyn",
	})
}

func BenchmarkFig6StorageAPI(b *testing.B) {
	benchExperiment(b, func() (*experiments.Result, error) {
		return experiments.StorageAPI(200)
	}, map[string]string{
		"NVMe_4096_lab_spdk":          "iops-spdk",
		"NVMe_4096_lab_kernel_driver": "iops-kd",
		"NVMe_4096_io_uring":          "iops-uring",
		"NVMe_4096_posix":             "iops-posix",
	})
}

func BenchmarkFig7Metadata(b *testing.B) {
	benchExperiment(b, func() (*experiments.Result, error) {
		return experiments.Metadata([]int{1, 8, 24}, 200)
	}, map[string]string{
		"LabFS-All_24": "kops-laball",
		"LabFS-D_24":   "kops-labd",
		"ext4_24":      "kops-ext4",
	})
}

func BenchmarkFig8Schedulers(b *testing.B) {
	benchExperiment(b, func() (*experiments.Result, error) {
		return experiments.Schedulers(40, 64)
	}, map[string]string{
		"Lab-NoOp_colocated_avg": "us-noop-co",
		"Lab-Blk_colocated_avg":  "us-blk-co",
		"Lab-NoOp_isolated_avg":  "us-noop-iso",
	})
}

func BenchmarkFig9aPFS(b *testing.B) {
	benchExperiment(b, func() (*experiments.Result, error) {
		return experiments.PFS(8, 2, 1<<20)
	}, map[string]string{
		"total_NVMe_ext4":      "s-ext4",
		"total_NVMe_LabFS-All": "s-laball",
	})
}

func BenchmarkFig9bLabios(b *testing.B) {
	benchExperiment(b, func() (*experiments.Result, error) {
		return experiments.Labios(200)
	}, map[string]string{
		"NVMe_LabKVS-All": "ops-labkvs",
		"NVMe_ext4":       "ops-ext4",
	})
}

func BenchmarkFig9cFilebench(b *testing.B) {
	benchExperiment(b, func() (*experiments.Result, error) {
		return experiments.Filebench(3, []device.Class{device.NVMe})
	}, map[string]string{
		"NVMe_varmail_LabFS-All": "ops-vm-lab",
		"NVMe_varmail_ext4":      "ops-vm-ext4",
	})
}

func BenchmarkAblations(b *testing.B) {
	benchExperiment(b, experiments.Ablations, map[string]string{
		"shards_1":        "kops-1shard",
		"shards_64":       "kops-64shard",
		"exec_sync_true":  "us-sync",
		"exec_sync_false": "us-async",
		"cache_true":      "us-cached",
		"cache_false":     "us-uncached",
	})
}

// --- micro-benchmarks of the platform itself -----------------------------------

func newBenchPlatform(b *testing.B) (*labstor.Platform, *labstor.Session) {
	return newBenchPlatformSampled(b, 0) // default telemetry sampling (1 in 64)
}

func newBenchPlatformSampled(b *testing.B, sampleEvery int) (*labstor.Platform, *labstor.Session) {
	b.Helper()
	p := labstor.NewPlatform(labstor.Config{Workers: 2, PerfSampleEvery: sampleEvery})
	b.Cleanup(p.Close)
	p.AddDevice("nvme0", labstor.NVMe, 1<<30)
	if _, err := p.MountSpec(`
mount: fs::/b
mods:
  - uuid: fs
    type: labstor.labfs
    attrs:
      device: nvme0
      log_mb: 32
  - uuid: sched
    type: labstor.noop
    attrs:
      device: nvme0
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: nvme0
`); err != nil {
		b.Fatal(err)
	}
	return p, p.Connect()
}

func BenchmarkRequestRoundTripAsync(b *testing.B) {
	_, s := newBenchPlatform(b)
	f, err := s.Create("fs::/b/bench.dat")
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WriteAt(buf, int64(i%1024)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLabFSWrite4K(b *testing.B) {
	_, s := newBenchPlatform(b)
	f, _ := s.Create("fs::/b/w4k.dat")
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.WriteAt(buf, int64(i%2048)*4096)
	}
}

// BenchmarkLabFSWrite4KNoTelemetry is the telemetry-overhead control:
// identical to BenchmarkLabFSWrite4K but with sampling disabled, so the
// delta between the two is the full cost of per-stage tracing, the trace
// ring, and the metric counters.
func BenchmarkLabFSWrite4KNoTelemetry(b *testing.B) {
	_, s := newBenchPlatformSampled(b, runtime.PerfSamplingDisabled)
	f, _ := s.Create("fs::/b/w4k.dat")
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.WriteAt(buf, int64(i%2048)*4096)
	}
}

func BenchmarkLabFSRead4KCached(b *testing.B) {
	_, s := newBenchPlatform(b)
	f, _ := s.Create("fs::/b/r4k.dat")
	buf := make([]byte, 4096)
	f.WriteAt(buf, 0)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ReadAt(buf, 0)
	}
}

func BenchmarkCreateEmptyFiles(b *testing.B) {
	_, s := newBenchPlatform(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Create(fmt.Sprintf("fs::/b/c-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchHotpath drives b.N requests through a one-vertex dummy stack in
// windows of 64 outstanding requests. batch selects the worker drain batch
// (1 = the legacy single-request poll path); pooled recycles requests
// through core.AcquireRequest/Release and submits with SubmitBatch instead
// of per-request SubmitStackAsync. Run with -benchmem: the
// unbatched-vs-batched delta is ns/op, the heap-vs-pooled delta allocs/op.
func benchHotpath(b *testing.B, batch int, pooled bool) {
	b.Helper()
	rt := runtime.New(runtime.Options{MaxWorkers: 1, QueueDepth: 4096, Batch: batch})
	b.Cleanup(rt.Shutdown)
	rt.AddDevice(device.New("dev0", device.NVMe, 32<<20))
	stack, err := rt.Mount(core.NewStack("msg::/bench", core.Rules{}, []core.Vertex{
		{UUID: "bench/dum", Type: "labstor.dummy"},
	}))
	if err != nil {
		b.Fatal(err)
	}
	rt.Start()
	cli := rt.Connect(ipc.Credentials{PID: 1, UID: 0, GID: 0})

	const window = 64
	reqs := make([]*core.Request, window)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := window
		if b.N-done < n {
			n = b.N - done
		}
		for i := 0; i < n; i++ {
			if pooled {
				reqs[i] = core.AcquireRequest(core.OpMessage)
			} else {
				reqs[i] = core.NewRequest(core.OpMessage)
			}
		}
		if pooled {
			if err := cli.SubmitBatch(stack, reqs[:n]); err != nil {
				b.Fatal(err)
			}
		} else {
			for i := 0; i < n; i++ {
				if err := cli.SubmitStackAsync(stack, reqs[i]); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := cli.WaitAll(reqs[:n]); err != nil {
			b.Fatal(err)
		}
		if pooled {
			for i := 0; i < n; i++ {
				reqs[i].Release()
			}
		}
		done += n
	}
}

func BenchmarkHotpathUnbatchedHeap(b *testing.B) { benchHotpath(b, 1, false) }
func BenchmarkHotpathBatchedHeap(b *testing.B)   { benchHotpath(b, 8, false) }
func BenchmarkHotpathBatchedPooled(b *testing.B) { benchHotpath(b, 8, true) }

// BenchmarkRequestLifecycleHeap / Pooled isolate the request object's
// create-trace-complete-dispose cycle (the allocation the pool removes).
func BenchmarkRequestLifecycleHeap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := core.NewRequest(core.OpMessage)
		r.Trace = true
		r.Charge("bench", 100)
		r.MarkDone()
	}
}

func BenchmarkRequestLifecyclePooled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := core.AcquireRequest(core.OpMessage)
		r.Trace = true
		r.Charge("bench", 100)
		r.MarkDone()
		r.Release()
	}
}

func BenchmarkKVPut8K(b *testing.B) {
	p := labstor.NewPlatform(labstor.Config{Workers: 2})
	b.Cleanup(p.Close)
	p.AddDevice("nvme0", labstor.NVMe, 1<<30)
	if _, err := p.MountSpec(`
mount: kv::/b
mods:
  - uuid: kvs
    type: labstor.labkvs
    attrs:
      device: nvme0
      log_mb: 32
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: nvme0
`); err != nil {
		b.Fatal(err)
	}
	kv := p.Connect().KV("kv::/b")
	val := make([]byte, 8<<10)
	b.SetBytes(8 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kv.Put(fmt.Sprintf("k-%d", i%4096), val); err != nil {
			b.Fatal(err)
		}
	}
}
