GO ?= go

.PHONY: build test vet race check bench telemetry

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check runs the full gate: tier-1 (build + test), vet, and the race
# detector across every package.
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# telemetry runs the probe workload and dumps the runtime snapshot.
telemetry:
	$(GO) run ./cmd/labbench -telemetry -quick
