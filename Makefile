GO ?= go

.PHONY: build test vet race check bench bench-hotpath bench-contention bench-zerocopy bench-observe bench-attribution bench-serve bench-pushdown bench-gate telemetry obs-smoke serve-smoke fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check runs the full gate: tier-1 (build + test), vet, and the race
# detector across every package.
check:
	sh scripts/check.sh

bench: bench-hotpath
	$(GO) test -bench . -benchtime 1x -benchmem -run '^$$' .

# bench-hotpath measures the batched/pooled hot path against the legacy
# per-request path and records the scalar results in BENCH_hotpath.json.
bench-hotpath:
	$(GO) run ./cmd/labbench -exp hotpath -json BENCH_hotpath.json

# bench-contention measures multi-writer device-store scaling, striped vs
# global lock, and records the scalar results in BENCH_contention.json.
bench-contention:
	$(GO) run ./cmd/labbench -exp contention -json BENCH_contention.json

# bench-zerocopy measures the zero-copy data path: the copy ladder
# (copypath -> baseline -> zeropath -> mapped) at 1/4/8 clients, stack-level
# copies/op from the telemetry copy-site audit, and the modeled cross-NUMA
# charge reduction from locality-aware placement (BENCH_zerocopy.json).
bench-zerocopy:
	$(GO) run ./cmd/labbench -exp zerocopy -json BENCH_zerocopy.json

# bench-observe measures the cost of the live observability plane (SLO
# watchdog + flight recorder + HTTP scraping) against the telemetry-only
# baseline and records the scalar results in BENCH_observe.json.
bench-observe:
	$(GO) run ./cmd/labbench -exp observe -json BENCH_observe.json

# bench-attribution measures the cost of always-on latency attribution
# (per-request fold + tail-retention decision) against the profiling-off
# baseline and records the scalar results in BENCH_attribution.json.
bench-attribution:
	$(GO) run ./cmd/labbench -exp attribution -json BENCH_attribution.json

# bench-serve drives the network front end over real TCP loopback: the
# concurrent-connection ladder (100/1000/4000) in direct and sharded-router
# modes, per-tenant rate-limit enforcement and BUSY backpressure
# (BENCH_serve.json).
bench-serve:
	$(GO) run ./cmd/labbench -exp serve -json BENCH_serve.json

# bench-pushdown runs the computation-pushdown selectivity ladder (KVS scan
# + FS grep, direct and over TCP) and hard-fails unless 1%-selectivity
# pushdown beats client-side filtering >=3x on bytes moved and on 8-client
# jobs/s (BENCH_pushdown.json).
bench-pushdown:
	$(GO) run ./cmd/labbench -exp pushdown -json BENCH_pushdown.json

# bench-gate reruns the hotpath bench and warns (never fails) when batched
# throughput regressed >10% vs the committed BENCH_hotpath.json.
bench-gate:
	sh scripts/bench_gate.sh

# obs-smoke boots labstor-runtime with the observability server on an
# ephemeral port and asserts /metrics and /snapshot serve real payloads.
obs-smoke:
	sh scripts/obs_smoke.sh

# serve-smoke boots labstor-runtime with the network front end on an
# ephemeral port, drives RPCs through labctl, and asserts the serve.*
# admission series appear on /metrics.
serve-smoke:
	sh scripts/serve_smoke.sh

# fuzz smoke-runs the wire-protocol frame decoder and YAML spec builder
# fuzzers.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzFrameDecode -fuzztime 10s ./internal/serve
	$(GO) test -run '^$$' -fuzz FuzzSpecParse -fuzztime 10s ./internal/spec

# telemetry runs the probe workload and dumps the runtime snapshot.
telemetry:
	$(GO) run ./cmd/labbench -telemetry -quick
