// Package labstor is the public API of the LabStor platform reproduction:
// a modular, extensible userspace I/O platform where single-purpose I/O
// modules (LabMods) are composed by end users into workload- and
// hardware-specific I/O stacks (LabStacks) executed by a runtime with
// polling workers, dynamic work orchestration, live module upgrades and
// crash recovery.
//
// The facade wires together the internal packages:
//
//	p, _ := labstor.NewPlatform(labstor.Config{Workers: 4})
//	p.AddDevice("nvme0", labstor.NVMe, 4<<30)
//	p.MountSpec(`
//	mount: fs::/data
//	mods:
//	  - {uuid: fs, type: labstor.labfs, attrs: {device: nvme0}}
//	  - {uuid: sched, type: labstor.noop, attrs: {device: nvme0}}
//	  - {uuid: drv, type: labstor.kernel_driver, attrs: {device: nvme0}}
//	`)
//	sess := p.Connect()
//	f, _ := sess.Create("fs::/data/hello.txt")
//	f.WriteAt([]byte("hi"), 0)
//
// (The inline flow-mapping syntax above is illustrative; the spec parser
// accepts the block form shown in the examples/ directory.)
package labstor

import (
	"fmt"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	_ "labstor/internal/mods/allmods" // register the built-in LabMods
	"labstor/internal/runtime"
	"labstor/internal/vtime"
)

// Device classes re-exported for configuration.
const (
	HDD  = device.HDD
	SSD  = device.SATASSD
	NVMe = device.NVMe
	PMEM = device.PMEM
)

// Config configures a Platform.
type Config struct {
	// Workers is the Runtime worker pool size (default 4).
	Workers int
	// Policy is the work-orchestration policy: "round_robin" (default) or
	// "dynamic".
	Policy string
	// QueueDepth is the per-client queue-pair depth (default 1024).
	QueueDepth int
	// Batch is the worker drain batch size: up to Batch requests are taken
	// from a queue per scan with one vectored ring reservation (default 1 =
	// the single-request poll path; clamped to QueueDepth).
	Batch int
	// RebalanceEvery enables the periodic orchestrator rebalance loop.
	RebalanceEvery time.Duration
	// PerfSampleEvery is the telemetry sampling period: one request in N
	// gets a full per-stage trace (0 = runtime default of 64; a negative
	// value, e.g. runtime.PerfSamplingDisabled, disables sampling).
	PerfSampleEvery int
}

// Platform is a running LabStor instance: runtime + namespace + devices.
type Platform struct {
	rt *runtime.Runtime
}

// NewPlatform creates and starts a platform.
func NewPlatform(cfg Config) *Platform {
	rt := runtime.New(runtime.Options{
		MaxWorkers:      cfg.Workers,
		Policy:          cfg.Policy,
		QueueDepth:      cfg.QueueDepth,
		Batch:           cfg.Batch,
		RebalanceEvery:  cfg.RebalanceEvery,
		PerfSampleEvery: cfg.PerfSampleEvery,
	})
	rt.Start()
	return &Platform{rt: rt}
}

// Close shuts the platform down.
func (p *Platform) Close() { p.rt.Shutdown() }

// Runtime exposes the underlying runtime for advanced use (upgrades,
// orchestrator control, crash injection in tests).
func (p *Platform) Runtime() *runtime.Runtime { return p.rt }

// Snapshot collects the platform's full telemetry tree: per-worker,
// per-queue and per-stage breakdowns, the metric registry and recent
// request traces.
func (p *Platform) Snapshot() *runtime.Snapshot { return p.rt.Snapshot() }

// AddDevice attaches a simulated storage device.
func (p *Platform) AddDevice(name string, class device.Class, capacity int64) *device.Device {
	d := device.New(name, class, capacity)
	p.rt.AddDevice(d)
	return d
}

// MountSpec parses a LabStack spec document and mounts the stack.
func (p *Platform) MountSpec(spec string) (*core.Stack, error) { return p.rt.MountSpec(spec) }

// Unmount removes a mounted stack.
func (p *Platform) Unmount(mount string) error { return p.rt.Unmount(mount) }

// Mounts lists the mounted stack paths.
func (p *Platform) Mounts() []string { return p.rt.Namespace.Mounts() }

// Session is an application connection to the platform (a client library
// instance bound to process credentials).
type Session struct {
	cli *runtime.Client
}

// Connect opens a session with default credentials.
func (p *Platform) Connect() *Session { return p.ConnectAs(1000, 1000) }

// ConnectAs opens a session with explicit uid/gid.
func (p *Platform) ConnectAs(uid, gid int) *Session {
	cli := p.rt.Connect(ipc.Credentials{PID: 1000 + uid, UID: uid, GID: gid})
	return &Session{cli: cli}
}

// Close disconnects the session.
func (s *Session) Close() { s.cli.Disconnect() }

// Clock returns the session's modeled virtual time.
func (s *Session) Clock() vtime.Time { return s.cli.Clock() }

// Client exposes the underlying runtime client.
func (s *Session) Client() *runtime.Client { return s.cli }

func (s *Session) do(path string, op core.Op, build func(*core.Request)) (*core.Request, error) {
	stack, rem, ok := s.cli.Resolve(path)
	if !ok {
		return nil, fmt.Errorf("labstor: no stack serving %q", path)
	}
	req := core.NewRequest(op)
	req.Path = rem
	if build != nil {
		build(req)
	}
	if err := s.cli.SubmitStack(stack, req); err != nil {
		return req, err
	}
	return req, req.Err
}

// --- POSIX-style file API ------------------------------------------------------

// File is an open file handle on a LabStack filesystem.
type File struct {
	s    *Session
	path string
	fd   int
}

// Create creates (or truncates) a file and returns a handle.
func (s *Session) Create(path string) (*File, error) {
	req, err := s.do(path, core.OpCreate, func(r *core.Request) {
		r.Mode = 0644
		r.Flags = core.FlagCreate
	})
	if err != nil {
		return nil, err
	}
	return &File{s: s, path: path, fd: int(req.Result)}, nil
}

// Open opens an existing file.
func (s *Session) Open(path string) (*File, error) {
	req, err := s.do(path, core.OpOpen, nil)
	if err != nil {
		return nil, err
	}
	return &File{s: s, path: path, fd: int(req.Result)}, nil
}

// Path returns the file's full path.
func (f *File) Path() string { return f.path }

// WriteAt writes p at offset off.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	req, err := f.s.do(f.path, core.OpWrite, func(r *core.Request) {
		r.Offset = off
		r.Size = len(p)
		r.Data = p
		r.Flags = core.FlagCreate
	})
	if err != nil {
		return 0, err
	}
	return int(req.Result), nil
}

// ReadAt fills p from offset off.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	req, err := f.s.do(f.path, core.OpRead, func(r *core.Request) {
		r.Offset = off
		r.Size = len(p)
		r.Data = p
	})
	if err != nil {
		return 0, err
	}
	return int(req.Result), nil
}

// Append writes p at end-of-file.
func (f *File) Append(p []byte) (int, error) {
	req, err := f.s.do(f.path, core.OpAppend, func(r *core.Request) {
		r.Size = len(p)
		r.Data = p
	})
	if err != nil {
		return 0, err
	}
	return int(req.Result), nil
}

// Sync makes the file durable (metadata log flush + device flush).
func (f *File) Sync() error {
	_, err := f.s.do(f.path, core.OpFsync, nil)
	return err
}

// Size returns the file size.
func (f *File) Size() (int64, error) {
	req, err := f.s.do(f.path, core.OpStat, nil)
	if err != nil {
		return 0, err
	}
	return req.Result, nil
}

// Close closes the handle.
func (f *File) Close() error {
	_, err := f.s.do(f.path, core.OpClose, func(r *core.Request) { r.FD = f.fd })
	return err
}

// --- path-level operations ------------------------------------------------------

// Mkdir creates a directory.
func (s *Session) Mkdir(path string) error {
	_, err := s.do(path, core.OpMkdir, func(r *core.Request) { r.Mode = 0755 })
	return err
}

// Remove unlinks a file.
func (s *Session) Remove(path string) error {
	_, err := s.do(path, core.OpUnlink, nil)
	return err
}

// Rename moves a file within one stack. Both paths must resolve to the
// same mount.
func (s *Session) Rename(from, to string) error {
	stack, remFrom, ok := s.cli.Resolve(from)
	if !ok {
		return fmt.Errorf("labstor: no stack serving %q", from)
	}
	stack2, remTo, ok := s.cli.Resolve(to)
	if !ok || stack2 != stack {
		return fmt.Errorf("labstor: rename across stacks (%q -> %q)", from, to)
	}
	req := core.NewRequest(core.OpRename)
	req.Path = remFrom
	req.Path2 = remTo
	if err := s.cli.SubmitStack(stack, req); err != nil {
		return err
	}
	return req.Err
}

// ReadDir lists the children of a directory.
func (s *Session) ReadDir(path string) ([]string, error) {
	req, err := s.do(path, core.OpReaddir, nil)
	if err != nil {
		return nil, err
	}
	return req.Names, nil
}

// Stat returns a file's size.
func (s *Session) Stat(path string) (int64, error) {
	req, err := s.do(path, core.OpStat, nil)
	if err != nil {
		return 0, err
	}
	return req.Result, nil
}

// --- key-value API ---------------------------------------------------------------

// KV is a handle onto a LabKVS stack.
type KV struct {
	s     *Session
	mount string
}

// KV returns a key-value handle for the stack mounted at mount.
func (s *Session) KV(mount string) *KV { return &KV{s: s, mount: mount} }

// Put stores value under key in a single operation.
func (k *KV) Put(key string, value []byte) error {
	_, err := k.s.do(k.mount, core.OpPut, func(r *core.Request) {
		r.Key = key
		r.Size = len(value)
		r.Data = value
	})
	return err
}

// Get retrieves the value stored under key.
func (k *KV) Get(key string) ([]byte, error) {
	req, err := k.s.do(k.mount, core.OpGet, func(r *core.Request) { r.Key = key })
	if err != nil {
		return nil, err
	}
	return req.Value, nil
}

// Del removes key.
func (k *KV) Del(key string) error {
	_, err := k.s.do(k.mount, core.OpDel, func(r *core.Request) { r.Key = key })
	return err
}

// Has reports whether key exists.
func (k *KV) Has(key string) (bool, error) {
	req, err := k.s.do(k.mount, core.OpHas, func(r *core.Request) { r.Key = key })
	if err != nil {
		return false, err
	}
	return req.Result == 1, nil
}

// Keys lists keys with the given prefix.
func (k *KV) Keys(prefix string) ([]string, error) {
	req, err := k.s.do(k.mount, core.OpReaddir, func(r *core.Request) { r.Path = prefix })
	if err != nil {
		return nil, err
	}
	return req.Names, nil
}
